"""Span-based tracing: nested wall-clock (and peak-memory) accounting.

A *span* is a named interval of work with attributes, a wall-clock
duration measured by :func:`time.perf_counter`, optional peak-memory
accounting via :mod:`tracemalloc`, and children — the spans opened
while it was the innermost open span.  The process-wide
:class:`Tracer` keeps a per-thread stack of open spans and accumulates
finished *root* spans until they are collected.

Usage::

    from repro import obs

    with obs.trace_span("maxmin.water_fill", flows=42) as span:
        ...
        span.set(rounds=3)

When observability is disabled (the default), :func:`trace_span`
returns a shared no-op context manager: no allocation, no clock reads,
no stack mutation — instrumented code costs one flag check.

Two knobs keep tracing overhead flat at simulator event rates
(``REPRO_OBS_SAMPLE`` / ``REPRO_OBS_RING``, see
:mod:`repro.obs.state`): *sampling* keeps a deterministic fraction of
root span trees (the decision is made when the root opens, so a kept
tree is always complete), and the *ring buffer* bounds how many
finished root trees the tracer retains between ``collect()`` calls,
dropping the oldest.  Both default to "keep everything"; the tracer
counts what it discarded (``sampled_out`` / ``ring_dropped``) so
telemetry consumers can report the loss instead of hiding it.

Export is JSON-first: :meth:`Span.to_dict` renders the tree with
durations quantized to microseconds, and ``times=False`` drops wall
times and memory entirely so golden tests can compare span *shapes*
deterministically.  JSONL files (one root-span tree per line) are
written and read through :mod:`repro.io.serialize`.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from functools import wraps
from typing import Any, Callable, Dict, List, Optional

from repro.obs.state import STATE

#: Wall-time fields are quantized to this many decimal digits of a
#: second (microseconds) on export, so JSON round-trips are stable.
TIME_DIGITS = 6


class Span:
    """One named, timed interval with attributes and child spans."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "duration",
        "mem_peak_bytes",
        "_t0",
        "_mem0",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.duration: float = 0.0
        self.mem_peak_bytes: Optional[int] = None
        self._t0: float = 0.0
        self._mem0: int = 0

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes on the open span."""
        self.attrs.update(attrs)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self, times: bool = True) -> Dict[str, Any]:
        """The span tree as plain JSON-safe dicts.

        ``times=False`` drops wall times and memory — the deterministic
        shape golden tests compare.
        """
        out: Dict[str, Any] = {"name": self.name}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if times:
            out["duration_s"] = round(self.duration, TIME_DIGITS)
            if self.mem_peak_bytes is not None:
                out["mem_peak_bytes"] = self.mem_peak_bytes
        if self.children:
            out["children"] = [c.to_dict(times=times) for c in self.children]
        return out

    def walk(self, depth: int = 0):
        """Yield ``(depth, span)`` depth-first over the tree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration:.6f}s, "
            f"{len(self.children)} children)"
        )


class _NoOpSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP = _NoOpSpan()


class _SpanContext:
    """Context manager that opens a :class:`Span` on the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._pop(self._span)
        return None


class _DiscardedSpanContext(_SpanContext):
    """A sampled-out root: opened on the stack like any span (so every
    descendant attaches to it rather than leaking out as a new root),
    then dropped whole on exit."""

    __slots__ = ()

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._pop_discarded(self._span)
        return None


class Tracer:
    """Per-thread span stacks plus the finished-root-span accumulator."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._roots: List[Span] = []
        self._lock = threading.Lock()
        self._sample_seq = 0
        #: Root trees discarded by sampling since the last reset.
        self.sampled_out = 0
        #: Finished root trees evicted by the ring buffer since reset.
        self.ring_dropped = 0

    # ------------------------------------------------------------------
    # Stack management
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if STATE.memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
            if not stack:
                tracemalloc.reset_peak()
            span._mem0 = tracemalloc.get_traced_memory()[0]
        stack.append(span)
        span._t0 = time.perf_counter()

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span._t0
        if STATE.memory and tracemalloc.is_tracing():
            peak = tracemalloc.get_traced_memory()[1]
            span.mem_peak_bytes = max(0, peak - span._mem0)
        stack = self._stack()
        # Tolerate a torn stack (an exception skipped inner __exit__s):
        # unwind to this span rather than corrupting the tree.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
                ring = STATE.ring
                if ring > 0:
                    while len(self._roots) > ring:
                        self._roots.pop(0)
                        self.ring_dropped += 1

    def _pop_discarded(self, span: Span) -> None:
        """Unwind like :meth:`_pop` but drop the tree instead of
        recording it (the sampled-out-root path)."""
        stack = self._stack()
        while stack:
            if stack.pop() is span:
                break

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, Span(name, attrs))

    def discarded_span(self, name: str, **attrs: Any) -> _SpanContext:
        return _DiscardedSpanContext(self, Span(name, attrs))

    def sample_root(self) -> bool:
        """Deterministically decide whether to keep the next root tree.

        Counter-based: of any ``n`` consecutive roots, exactly
        ``floor(n * rate)`` are kept — no RNG, so traced runs stay
        reproducible.  Discards are tallied in :attr:`sampled_out`.
        """
        rate = STATE.sample
        if rate >= 1.0:
            return True
        with self._lock:
            self._sample_seq += 1
            seq = self._sample_seq
            keep = int(seq * rate) > int((seq - 1) * rate)
            if not keep:
                self.sampled_out += 1
        return keep

    def adopt(self, span: Span) -> None:
        """Attach a finished span built elsewhere (e.g. a worker's
        re-parented tree): as a child of the innermost open span on this
        thread, or as a finished root when none is open."""
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def collect(self) -> List[Span]:
        """Remove and return all finished root spans."""
        with self._lock:
            roots, self._roots = self._roots, []
        return roots

    def reset(self) -> None:
        self.collect()
        self._local = threading.local()
        self._sample_seq = 0
        self.sampled_out = 0
        self.ring_dropped = 0


#: The process-wide tracer every instrumented module records into.
TRACER = Tracer()


def trace_span(name: str, **attrs: Any):
    """Open a span named ``name`` (no-op when observability is off).

    Returns a context manager yielding the :class:`Span` (or a no-op
    stand-in that still accepts ``.set(...)``).
    """
    if not STATE.enabled:
        return _NOOP
    if STATE.sample < 1.0 and not TRACER._stack() and not TRACER.sample_root():
        # The discarded root still occupies the stack so its descendants
        # are dropped with it instead of leaking out as new roots.
        return TRACER.discarded_span(name, **attrs)
    return TRACER.span(name, **attrs)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form of :func:`trace_span`.

    >>> @traced("solver.solve")
    ... def solve():
    ...     return 42
    >>> solve()
    42
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name if name is not None else fn.__qualname__

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not STATE.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def write_trace_jsonl(path: str, spans: List[Span]) -> str:
    """Write root spans as JSONL (one span tree per line); returns path."""
    from repro.io.serialize import write_jsonl_atomic

    return write_jsonl_atomic(path, [span.to_dict() for span in spans])


def span_from_dict(document: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from its :meth:`Span.to_dict` form."""
    span = Span(str(document["name"]), dict(document.get("attrs", {})))
    span.duration = float(document.get("duration_s", 0.0))
    if "mem_peak_bytes" in document:
        span.mem_peak_bytes = int(document["mem_peak_bytes"])
    for child in document.get("children", []):
        span.children.append(span_from_dict(child))
    return span
