"""Standard-format telemetry exporters: Chrome ``trace_event`` + Prometheus.

Traces and metrics captured by :mod:`repro.obs` are most useful inside
existing viewers, so this module renders them into two widely-supported
formats:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by ``chrome://tracing`` and https://ui.perfetto.dev.
  Spans become ``"X"`` (complete) events with microsecond timestamps;
  worker span forests (the synthetic ``worker:<i>`` roots produced by
  :mod:`repro.obs.pipeline`) are emitted as separate *processes* so the
  viewer lays each worker out on its own track.
- :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, sanitized metric names, histograms as summaries
  with quantile labels), suitable for a textfile collector or a
  scrape-once gateway.

Spans store durations, not absolute wall times, so Chrome timestamps
are *synthesized*: each process's events are laid out back to back from
t=0, children starting at their parent's start plus the durations of
prior siblings.  Relative layout and all durations are faithful; only
the absolute epoch is invented.

:func:`aggregate_spans` folds a span forest into a per-name
self-time/cumulative-time table — the engine behind ``repro top`` and
``repro bench diff`` attribution.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Span

__all__ = [
    "aggregate_spans",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
]

#: Spans with this name prefix (from repro.obs.pipeline) get their own
#: Chrome process track.
_WORKER_PREFIX = "worker:"


def _microseconds(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def _event_args(span: Span) -> Optional[Dict[str, Any]]:
    args: Dict[str, Any] = {}
    for key, value in span.attrs.items():
        if isinstance(value, Fraction):
            value = str(value)
        elif not isinstance(value, (int, float, str, bool, type(None))):
            value = repr(value)
        args[key] = value
    if span.mem_peak_bytes is not None:
        args["mem_peak_bytes"] = span.mem_peak_bytes
    return args or None


def _emit_span(
    span: Span, start_us: int, pid: int, events: List[Dict[str, Any]]
) -> int:
    """Append ``span``'s subtree as events starting at ``start_us``;
    return the span's end timestamp."""
    duration_us = _microseconds(span.duration)
    event: Dict[str, Any] = {
        "name": span.name,
        "ph": "X",
        "ts": start_us,
        "dur": duration_us,
        "pid": pid,
        "tid": 0,
        "cat": "repro",
    }
    args = _event_args(span)
    if args is not None:
        event["args"] = args
    events.append(event)
    cursor = start_us
    for child in span.children:
        cursor = _emit_span(child, cursor, pid, events)
    return start_us + duration_us


def chrome_trace(
    spans: Iterable[Span], process_name: str = "repro"
) -> Dict[str, Any]:
    """Render root span trees as a Chrome ``trace_event`` document.

    Roots named ``worker:<i>`` (re-parented worker forests) are given
    their own pid — one process track per worker in the viewer — while
    everything else shares pid 0 (``process_name``).
    """
    events: List[Dict[str, Any]] = []
    named_pids: List[Tuple[int, str]] = [(0, process_name)]
    cursors: Dict[int, int] = {0: 0}
    next_pid = 1
    for span in spans:
        pid = 0
        if span.name.startswith(_WORKER_PREFIX):
            pid = next_pid
            next_pid += 1
            label = span.name
            os_pid = span.attrs.get("pid")
            if os_pid is not None:
                label = f"{span.name} (os pid {os_pid})"
            named_pids.append((pid, label))
            cursors[pid] = 0
        cursors[pid] = _emit_span(span, cursors[pid], pid, events)

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in named_pids
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, spans: Iterable[Span], process_name: str = "repro"
) -> str:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    from repro.io.serialize import write_json_atomic

    return write_json_atomic(path, chrome_trace(spans, process_name))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """``maxmin.rounds`` → ``repro_maxmin_rounds``."""
    return "repro_" + _NAME_SANITIZE.sub("_", name)


def _prom_value(value: Any) -> str:
    """Render a snapshot value as a Prometheus float literal.

    Exact rationals arrive as ``"p/q"`` strings; Prometheus only speaks
    floats, so precision loss here is inherent to the format (the JSON
    exports stay exact).
    """
    if isinstance(value, str):
        value = float(Fraction(value))
    if isinstance(value, bool):
        value = int(value)
    return repr(float(value))


def prometheus_text(
    snapshot: Dict[str, Any], kinds: Optional[Dict[str, str]] = None
) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    ``snapshot`` is a ``metrics_snapshot()``-shaped map; ``kinds`` (from
    :meth:`MetricsRegistry.kinds`) distinguishes counters from gauges
    for the ``# TYPE`` headers — without it, scalar instruments are
    typed ``untyped``.  Histogram summaries become Prometheus summaries
    (quantile-labelled samples plus ``_sum``/``_count``).
    """
    kinds = kinds or {}
    lines: List[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        prom = _prom_name(name)
        if isinstance(value, dict):
            lines.append(f"# TYPE {prom} summary")
            for key, quantile in (("p50", "0.5"), ("p90", "0.9"),
                                  ("p99", "0.99")):
                if key in value:
                    lines.append(
                        f'{prom}{{quantile="{quantile}"}} '
                        f"{_prom_value(value[key])}"
                    )
            if "sum" in value:
                lines.append(f"{prom}_sum {_prom_value(value['sum'])}")
            lines.append(f"{prom}_count {_prom_value(value['count'])}")
        else:
            kind = kinds.get(name)
            prom_type = kind if kind in ("counter", "gauge") else "untyped"
            lines.append(f"# TYPE {prom} {prom_type}")
            lines.append(f"{prom} {_prom_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Per-span aggregation (repro top / bench diff attribution)
# ----------------------------------------------------------------------
def aggregate_spans(spans: Iterable[Span]) -> Dict[str, Dict[str, Any]]:
    """Fold a span forest into per-name totals.

    Returns ``{name: {"count", "cum_s", "self_s"}}`` where *cumulative*
    time sums each span's full duration and *self* time subtracts the
    durations of its direct children (clamped at zero — clock jitter
    can make children sum past their parent).  Self times therefore
    partition the forest's wall clock without double counting, which is
    what makes them the right basis for regression attribution.
    """
    table: Dict[str, Dict[str, Any]] = {}
    for root in spans:
        for _, span in root.walk():
            entry = table.setdefault(
                span.name, {"count": 0, "cum_s": 0.0, "self_s": 0.0}
            )
            entry["count"] += 1
            entry["cum_s"] += span.duration
            child_time = sum(child.duration for child in span.children)
            entry["self_s"] += max(0.0, span.duration - child_time)
    return table
