"""The single on/off switch every instrument consults.

Observability must be *zero-cost when disabled*: the solvers' hot loops
call ``Counter.inc`` unconditionally, so the disabled fast path has to
be one attribute load and an early return — no dict lookups, no
``os.environ`` reads, no locks.  That flag lives here, in a module with
no other imports, so :mod:`repro.obs.metrics` and
:mod:`repro.obs.trace` can share it without a cycle.

The initial value comes from the ``REPRO_OBS`` environment variable
(default off); :func:`repro.obs.enable` / :func:`repro.obs.disable`
flip it at runtime.  Two further knobs bound tracing cost at high
event rates (see :mod:`repro.obs.trace`):

- ``REPRO_OBS_SAMPLE=<rate>`` — keep only this fraction of *root*
  span trees (deterministic counter-based sampling, no RNG; default
  ``1.0`` keeps everything).
- ``REPRO_OBS_RING=<n>`` — bound the finished-root-span sink to the
  most recent ``n`` trees (ring buffer; default ``0`` = unbounded).
"""

from __future__ import annotations

import os

_FALSY = ("", "0", "false", "no", "off")
#: ``REPRO_OBS`` values that additionally turn on tracemalloc peaks.
_MEMORY = ("mem", "memory", "2")


def _environment_value() -> str:
    return os.environ.get("REPRO_OBS", "0").strip().lower()


def _sample_rate() -> float:
    """Parse ``REPRO_OBS_SAMPLE`` into [0, 1]; malformed values keep 1."""
    raw = os.environ.get("REPRO_OBS_SAMPLE", "").strip()
    if not raw:
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, rate))


def _ring_size() -> int:
    """Parse ``REPRO_OBS_RING`` into >= 0; malformed values keep 0."""
    raw = os.environ.get("REPRO_OBS_RING", "").strip()
    if not raw:
        return 0
    try:
        size = int(raw)
    except ValueError:
        return 0
    return max(0, size)


class ObsState:
    """Mutable process-wide observability switches."""

    __slots__ = ("enabled", "memory", "sample", "ring")

    def __init__(self) -> None:
        value = _environment_value()
        self.enabled: bool = value not in _FALSY
        #: Track peak memory (tracemalloc) inside spans.  Off unless
        #: ``REPRO_OBS=mem`` — tracemalloc slows allocation-heavy code
        #: noticeably, so plain ``REPRO_OBS=1`` stays wall-clock only.
        self.memory: bool = value in _MEMORY
        #: Fraction of root span trees to keep (1.0 = all).
        self.sample: float = _sample_rate()
        #: Max finished root spans retained (0 = unbounded).
        self.ring: int = _ring_size()


STATE = ObsState()
