"""The single on/off switch every instrument consults.

Observability must be *zero-cost when disabled*: the solvers' hot loops
call ``Counter.inc`` unconditionally, so the disabled fast path has to
be one attribute load and an early return — no dict lookups, no
``os.environ`` reads, no locks.  That flag lives here, in a module with
no other imports, so :mod:`repro.obs.metrics` and
:mod:`repro.obs.trace` can share it without a cycle.

The initial value comes from the ``REPRO_OBS`` environment variable
(default off); :func:`repro.obs.enable` / :func:`repro.obs.disable`
flip it at runtime.
"""

from __future__ import annotations

import os

_FALSY = ("", "0", "false", "no", "off")
#: ``REPRO_OBS`` values that additionally turn on tracemalloc peaks.
_MEMORY = ("mem", "memory", "2")


def _environment_value() -> str:
    return os.environ.get("REPRO_OBS", "0").strip().lower()


class ObsState:
    """Mutable process-wide observability switches."""

    __slots__ = ("enabled", "memory")

    def __init__(self) -> None:
        value = _environment_value()
        self.enabled: bool = value not in _FALSY
        #: Track peak memory (tracemalloc) inside spans.  Off unless
        #: ``REPRO_OBS=mem`` — tracemalloc slows allocation-heavy code
        #: noticeably, so plain ``REPRO_OBS=1`` stays wall-clock only.
        self.memory: bool = value in _MEMORY


STATE = ObsState()
