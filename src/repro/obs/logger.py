"""The structured logger: one event, one line, machine-parseable.

``logger.info("experiment.done", id="e3", elapsed=1.25)`` renders as::

    repro.report experiment.done id=e3 elapsed=1.25

on ``stderr`` (never stdout — experiment tables and replayed runner
output own stdout, and structured logs must not corrupt golden
captures).  Values render via ``repr``-free ``str`` except strings
containing whitespace, which are quoted.  Fractions render exactly.

Loggers are named and cached (:func:`get_logger`), follow the global
observability switch (silent when ``repro.obs`` is disabled, unless
constructed with ``always=True``), and keep their recent records in a
ring buffer so tests can assert on events without parsing text.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Any, Deque, Dict, Optional, TextIO, Tuple

from repro.obs.state import STATE

#: How many recent records each logger retains for inspection.
RING_SIZE = 256


def _render_value(value: Any) -> str:
    text = str(value)
    if any(ch.isspace() for ch in text) or text == "":
        return '"' + text.replace('"', '\\"') + '"'
    return text


class StructuredLogger:
    """Event + key-value logging gated on the observability switch."""

    def __init__(
        self,
        name: str,
        stream: Optional[TextIO] = None,
        always: bool = False,
    ) -> None:
        self.name = name
        self.stream = stream
        self.always = always
        self.records: Deque[Tuple[str, str, Dict[str, Any]]] = deque(
            maxlen=RING_SIZE
        )

    def _emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        if not (STATE.enabled or self.always):
            return
        self.records.append((level, event, fields))
        parts = [self.name, event]
        parts.extend(f"{key}={_render_value(value)}" for key, value in fields.items())
        if level != "info":
            parts.insert(0, level.upper())
        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(" ".join(parts) + "\n")

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)

    def events(self) -> list:
        """The retained event names, oldest first."""
        return [event for _, event, _ in self.records]


_LOGGERS: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """The cached structured logger for ``name``."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = StructuredLogger(name)
        _LOGGERS[name] = logger
    return logger
