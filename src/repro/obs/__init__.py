"""repro.obs — dependency-free tracing, metrics, and structured logging.

The observability layer for the whole reproduction: span-based wall
clock (and optional peak-memory) tracing, a registry of named counters
/ gauges / Fraction-safe histograms wired into the solver, router,
search, and simulator hot paths, and a structured logger — all behind
one process-wide switch.

Disabled by default.  Enable with the ``REPRO_OBS=1`` environment
variable or :func:`enable` / :func:`disable` at runtime; while
disabled, every instrument call is a single flag check (no allocation,
no clock read), so instrumented code is safe to leave in hot loops.

Typical use::

    from repro import obs

    obs.enable(memory=True)
    with obs.trace_span("sweep"):
        run_everything()
    for span in obs.tracer().collect():
        print(span.to_dict())
    print(obs.metrics_snapshot())

See ``docs/OBSERVABILITY.md`` for the instrument catalog and the
JSONL schema, and ``python -m repro profile <experiment>`` for the
CLI front end.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.logger import StructuredLogger, get_logger
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    snapshot_delta,
)
from repro.obs.export import (
    aggregate_spans,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.pipeline import (
    MergedTelemetry,
    TelemetryPayload,
    capture_payload,
    merge_payloads,
)
from repro.obs.state import STATE
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    span_from_dict,
    trace_span,
    traced,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MergedTelemetry",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "TelemetryPayload",
    "Tracer",
    "aggregate_spans",
    "capture_payload",
    "chrome_trace",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "histogram",
    "merge_payloads",
    "metrics",
    "metrics_snapshot",
    "prometheus_text",
    "snapshot_delta",
    "span_from_dict",
    "trace_span",
    "traced",
    "tracer",
    "write_chrome_trace",
    "write_trace_jsonl",
]


def enabled() -> bool:
    """Is observability currently on?"""
    return STATE.enabled


def enable(
    memory: bool = False,
    sample: Optional[float] = None,
    ring: Optional[int] = None,
) -> None:
    """Turn tracing/metrics/logging on (``memory`` adds tracemalloc).

    ``sample`` sets the root-span sampling rate in [0, 1] and ``ring``
    bounds the finished-root-span sink (0 = unbounded); ``None`` leaves
    the current (environment-derived) value in place.
    """
    STATE.enabled = True
    STATE.memory = memory
    if sample is not None:
        STATE.sample = min(1.0, max(0.0, sample))
    if ring is not None:
        STATE.ring = max(0, ring)


def disable() -> None:
    """Turn observability off and stop memory tracking."""
    STATE.enabled = False
    STATE.memory = False


def tracer() -> Tracer:
    """The process-wide tracer."""
    return TRACER


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return REGISTRY


def metrics_snapshot() -> Dict[str, Any]:
    """JSON-safe snapshot of every non-zero instrument."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Zero all metrics and drop any collected spans (test hygiene)."""
    REGISTRY.reset()
    TRACER.reset()
