"""repro.obs — dependency-free tracing, metrics, and structured logging.

The observability layer for the whole reproduction: span-based wall
clock (and optional peak-memory) tracing, a registry of named counters
/ gauges / Fraction-safe histograms wired into the solver, router,
search, and simulator hot paths, and a structured logger — all behind
one process-wide switch.

Disabled by default.  Enable with the ``REPRO_OBS=1`` environment
variable or :func:`enable` / :func:`disable` at runtime; while
disabled, every instrument call is a single flag check (no allocation,
no clock read), so instrumented code is safe to leave in hot loops.

Typical use::

    from repro import obs

    obs.enable(memory=True)
    with obs.trace_span("sweep"):
        run_everything()
    for span in obs.tracer().collect():
        print(span.to_dict())
    print(obs.metrics_snapshot())

See ``docs/OBSERVABILITY.md`` for the instrument catalog and the
JSONL schema, and ``python -m repro profile <experiment>`` for the
CLI front end.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.logger import StructuredLogger, get_logger
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    snapshot_delta,
)
from repro.obs.state import STATE
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    span_from_dict,
    trace_span,
    traced,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "histogram",
    "metrics",
    "metrics_snapshot",
    "snapshot_delta",
    "span_from_dict",
    "trace_span",
    "traced",
    "tracer",
    "write_trace_jsonl",
]


def enabled() -> bool:
    """Is observability currently on?"""
    return STATE.enabled


def enable(memory: bool = False) -> None:
    """Turn tracing/metrics/logging on (``memory`` adds tracemalloc)."""
    STATE.enabled = True
    STATE.memory = memory


def disable() -> None:
    """Turn observability off and stop memory tracking."""
    STATE.enabled = False
    STATE.memory = False


def tracer() -> Tracer:
    """The process-wide tracer."""
    return TRACER


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return REGISTRY


def metrics_snapshot() -> Dict[str, Any]:
    """JSON-safe snapshot of every non-zero instrument."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Zero all metrics and drop any collected spans (test hygiene)."""
    REGISTRY.reset()
    TRACER.reset()
