"""Invariant certificates for solver outputs — the self-checking runtime.

Four backends, an LRU cache, and an incremental move evaluator can all
produce "the max-min fair allocation"; this module certifies a result
*before* experiments and theorem checks consume it.  Three levels:

- ``off``   — no checking (the default; zero overhead).
- ``cheap`` — structural sanity: every routed flow has a rate, rates are
  non-negative / finite / not NaN, and no link is loaded beyond its
  capacity (within tolerance).  O(flows · path length), cheap enough
  for hot loops and the CI bench gate.
- ``full``  — everything ``cheap`` checks, plus routing well-formedness
  (each path joins its flow's endpoints) and the bottleneck-saturation
  certificate of max-min *optimality* (Lemma 2.2, via
  :mod:`repro.core.bottleneck`): every flow must have a saturated link
  on which its rate is maximal among crossing flows.

The level is resolved per check from, in priority order: an explicit
``level=`` argument, the process-wide override set by
:func:`set_validation_level` (what ``--validate`` uses), then the
``REPRO_VALIDATE`` environment variable.  Violations raise
:class:`~repro.errors.CertificateError` carrying the full defect list —
which the ``backend="auto"`` dispatch chain (:mod:`repro.core.solve`)
catches to fall back to the exact reference solver, and the quarantine
layer (:mod:`repro.quarantine`) serializes for replay.

Tolerances: exact (``Fraction``/``int``) rates are checked with
``tol=0``; float rates default to ``tol=1e-9`` — three orders looser
than the 1e-12 cross-backend agreement contract, so a healthy float
backend never trips a certificate, while a genuinely wrong answer
(a mis-frozen tie, an overfilled link) lands far outside the band.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from fractions import Fraction
from typing import Dict, List, Mapping, Optional

from repro.errors import CertificateError
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.routing import Link, Routing
from repro.obs import counter

_INF = float("inf")

#: Recognized validation levels, weakest to strongest.
LEVELS = ("off", "cheap", "full")

#: Environment variable consulted when no override or argument is given.
ENV_VAR = "REPRO_VALIDATE"

#: Default tolerance for float-rate checks (see module docstring).
FLOAT_TOL = 1e-9

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_CHECKS = counter("validate.checks")
_FAILURES = counter("validate.failures")
_CHEAP = counter("validate.cheap_checks")
_FULL = counter("validate.full_checks")

__all__ = [
    "ENV_VAR",
    "FLOAT_TOL",
    "LEVELS",
    "allocation_failures",
    "default_tolerance",
    "rate_disagreements",
    "record_check",
    "set_validation_level",
    "structure_failures",
    "validate_allocation",
    "validate_structure",
    "validation",
    "validation_level",
]

#: Process-wide override; ``None`` defers to the environment.
_OVERRIDE: Optional[str] = None


def _check_level(level: str) -> str:
    if level not in LEVELS:
        raise ValueError(
            f"unknown validation level {level!r}; expected one of {LEVELS}"
        )
    return level


def validation_level() -> str:
    """The validation level currently in force.

    Priority: :func:`set_validation_level` override, then the
    ``REPRO_VALIDATE`` environment variable, then ``"off"``.  An
    unrecognized environment value raises rather than silently
    disabling checks the user asked for.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return _check_level(os.environ.get(ENV_VAR, "off").strip() or "off")


def set_validation_level(level: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide validation level.

    Takes precedence over ``REPRO_VALIDATE``; this is what the CLI's
    ``--validate`` flag calls.
    """
    global _OVERRIDE
    _OVERRIDE = None if level is None else _check_level(level)


@contextmanager
def validation(level: str):
    """Context manager pinning the validation level (tests, fuzzing)."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = _check_level(level)
    try:
        yield
    finally:
        _OVERRIDE = previous


def _resolve(level: Optional[str]) -> str:
    return validation_level() if level is None else _check_level(level)


def default_tolerance(rates: Mapping[Flow, Rate]) -> float:
    """``0`` when every rate is exact (``Fraction``/``int``), else 1e-9."""
    # Exact class tests first: isinstance(r, Fraction) routes through
    # ABCMeta and dominates micro-solve validation cost if used per rate.
    for rate in rates.values():
        cls = rate.__class__
        if cls is Fraction or cls is int:
            continue
        if not isinstance(rate, (Fraction, int)):
            return FLOAT_TOL
    return 0.0


def _bump(value: Rate, tol: float) -> Rate:
    """``value`` plus a relative+absolute slack band.

    ``tol`` scales with the magnitude (``tol · (1 + |value|)``) so huge
    capacities do not trip on proportionally-tiny float rounding; with
    ``tol == 0`` the value is returned untouched, keeping exact
    ``Fraction`` comparisons exact.
    """
    return value + tol * (1.0 + abs(float(value))) if tol else value


def structure_failures(
    link_flows: Mapping[Link, List[Flow]],
    flow_links: Mapping[Flow, List[Link]],
    rates: Mapping[Flow, Rate],
    capacities: Mapping[Link, Rate],
    level: str,
    tol: float,
) -> List[str]:
    """Certificate defects of ``rates`` against a link-occupancy structure.

    The occupancy-level core shared by :func:`allocation_failures` and
    the incremental move evaluator (whose patched occupancy never
    materializes a :class:`~repro.core.routing.Routing`).  ``level``
    must be ``"cheap"`` or ``"full"``; returns a list of human-readable
    defect strings, empty when the certificate holds.
    """
    failures: List[str] = []

    # --- numeric sanity + coverage (cheap) -----------------------------
    exact = True
    for flow in flow_links:
        try:
            rate = rates[flow]
        except KeyError:
            failures.append(f"no rate assigned to routed flow {flow!r}")
            continue
        # Exact rates cannot be NaN/inf, and float(Fraction) costs a
        # bignum division per flow — test the class before converting.
        if rate.__class__ is Fraction or rate.__class__ is int:
            if rate < 0:
                failures.append(
                    f"negative rate {rate!r} for flow {flow!r}"
                )
            continue
        exact = False
        value = float(rate)
        if math.isnan(value):
            failures.append(f"NaN rate for flow {flow!r}")
        elif value == _INF:
            failures.append(f"infinite rate for flow {flow!r}")
        elif value < 0:
            failures.append(f"negative rate {rate!r} for flow {flow!r}")

    if failures:
        return failures  # loads/bottlenecks are meaningless on bad rates

    # --- per-link feasibility (cheap) ----------------------------------
    loads: Dict[Link, Rate] = {}
    if exact:
        # Fraction additions dominate the exact check, but water-filling
        # freezes whole rounds of flows at the *same* rate object —
        # grouping by id() replaces most of them with integer counting
        # (equal-but-distinct rate objects land in separate groups and
        # stay correct).  Float additions are as cheap as counting, so
        # the inexact path below just accumulates directly.
        groups: Dict[int, tuple] = {}
        for flow, links in flow_links.items():
            rate = rates[flow]
            entry = groups.get(id(rate))
            if entry is None:
                entry = (rate, {})
                groups[id(rate)] = entry
            counts = entry[1]
            for link in links:
                counts[link] = counts.get(link, 0) + 1
        for rate, counts in groups.values():
            for link, count in counts.items():
                contrib = rate * count if count > 1 else rate
                previous = loads.get(link)
                loads[link] = (
                    contrib if previous is None else previous + contrib
                )
    else:
        for flow, links in flow_links.items():
            rate = rates[flow]
            for link in links:
                loads[link] = loads.get(link, 0.0) + rate
    for link, load in loads.items():
        capacity = capacities[link]
        if capacity == _INF:
            continue
        if load > _bump(capacity, tol):
            failures.append(
                f"link {link!r} overloaded: load {load!r} > "
                f"capacity {capacity!r}"
            )
    if failures or level != "full":
        return failures

    # --- bottleneck-saturation certificate (full; Lemma 2.2) -----------
    # A feasible allocation is max-min fair iff every flow has a
    # *bottleneck*: a saturated link on which its rate is maximal among
    # crossing flows.  Precompute the per-link max once (the n = 64
    # certifications cross links with thousands of members).
    link_max: Dict[Link, Rate] = {
        link: max(rates[f] for f in members)
        for link, members in link_flows.items()
        if members
    }
    for flow, links in flow_links.items():
        rate = rates[flow]
        for link in links:
            capacity = capacities[link]
            if capacity == _INF:
                continue
            if loads[link] < capacity - (
                tol * (1.0 + abs(float(capacity))) if tol else 0
            ):
                continue  # not saturated
            if link_max[link] <= _bump(rate, tol):
                break  # bottleneck found
        else:
            failures.append(
                f"flow {flow!r} has no bottleneck link (rate {rate!r} "
                "is not maximal on any saturated link) — "
                "allocation is not max-min fair"
            )
    return failures


def allocation_failures(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    allocation: Allocation,
    level: Optional[str] = None,
    tol: Optional[float] = None,
) -> List[str]:
    """Certificate defects of ``allocation`` for ``routing``; [] = valid.

    ``level=None`` resolves the ambient level (``off`` returns []);
    ``tol=None`` picks :func:`default_tolerance` from the rate types.
    """
    level = _resolve(level)
    if level == "off":
        return []
    # Missing flows are a *defect to report* (via the coverage check in
    # structure_failures), not a crash — hence no allocation.rate(),
    # which raises on unknown flows.
    all_rates = allocation.rates()
    rates = {
        flow: all_rates[flow]
        for flow in routing.flows()
        if flow in all_rates
    }
    if tol is None:
        tol = default_tolerance(rates)

    failures: List[str] = []
    if level == "full":
        # Routing well-formedness: each path joins its flow's endpoints.
        for flow in routing.flows():
            path = routing.path(flow)
            if not path or path[0] != flow.source or path[-1] != flow.dest:
                failures.append(
                    f"path for {flow!r} does not join its endpoints: {path!r}"
                )
        if failures:
            return failures

    flow_links = {f: routing.links_of(f) for f in routing.flows()}
    failures.extend(
        structure_failures(
            routing.flows_per_link(), flow_links, rates, capacities,
            level, tol,
        )
    )
    return failures


def record_check(level: str, context: str, failures: List[str]) -> None:
    """Book a completed certificate check into the ``validate.*`` counters.

    Raises :class:`CertificateError` when ``failures`` is non-empty.
    Backends with their own check implementations (the NumPy cheap check
    inside :func:`repro.core.vectorized.waterfill`) report through this
    so counter semantics stay uniform across solver paths.
    """
    _CHECKS.inc()
    (_FULL if level == "full" else _CHEAP).inc()
    if failures:
        _FAILURES.inc()
        counter(f"validate.failures.{context}").inc()
        raise CertificateError(context, failures)


def validate_allocation(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    allocation: Allocation,
    level: Optional[str] = None,
    tol: Optional[float] = None,
    context: str = "solver",
) -> Allocation:
    """Certify ``allocation``; raises :class:`CertificateError` on defects.

    Returns the allocation unchanged so call sites can wrap a solve in
    one expression.  ``context`` names the solver path for the error and
    the ``validate.*`` counters (e.g. ``"maxmin.reference"``).
    """
    level = _resolve(level)
    if level == "off":
        return allocation
    failures = allocation_failures(
        routing, capacities, allocation, level=level, tol=tol
    )
    record_check(level, context, failures)
    return allocation


def validate_structure(
    link_flows: Mapping[Link, List[Flow]],
    flow_links: Mapping[Flow, List[Link]],
    rates: Mapping[Flow, Rate],
    capacities: Mapping[Link, Rate],
    level: Optional[str] = None,
    tol: Optional[float] = None,
    context: str = "solver",
) -> None:
    """:func:`validate_allocation` for a raw link-occupancy structure.

    The incremental move evaluator certifies its patched occupancy
    through this (no :class:`Routing` ever materializes for a candidate
    move); raises :class:`CertificateError` on defects.
    """
    level = _resolve(level)
    if level == "off":
        return
    if tol is None:
        tol = default_tolerance(rates)
    failures = structure_failures(
        link_flows, flow_links, rates, capacities, level, tol
    )
    record_check(level, context, failures)


def rate_disagreements(
    left: Mapping[Flow, Rate],
    right: Mapping[Flow, Rate],
    tol: float = 1e-6,
) -> List[str]:
    """Per-flow discrepancies between two rate maps; [] = agreement.

    Used by shadow checks and the chaos harness to compare backends.
    Exact-vs-exact comparisons should pass ``tol=0``; float-vs-exact
    uses a tolerance well above accumulated water-fill rounding.
    """
    diffs: List[str] = []
    for flow in set(left) | set(right):
        if flow not in left:
            diffs.append(f"flow {flow!r} missing from left allocation")
            continue
        if flow not in right:
            diffs.append(f"flow {flow!r} missing from right allocation")
            continue
        a, b = left[flow], right[flow]
        if tol:
            fa, fb = float(a), float(b)
            differs = abs(fa - fb) > tol * (1.0 + max(abs(fa), abs(fb)))
        else:
            differs = a != b
        if differs:
            diffs.append(f"flow {flow!r}: {a!r} vs {b!r}")
    return diffs
