"""Replayable quarantine bundles for solver failures.

When a certificate rejects a solver result or two backends disagree,
the instance is too valuable to lose: it is a reproducer for a solver
bug.  This module serializes the complete instance — routing (full
paths), capacities, suspect backend, seed, and the observed defects —
as a *quarantine bundle* via the atomic writers in
:mod:`repro.io.serialize`, and replays bundles later:

- :func:`quarantine_failure` — best-effort bundle capture (never raises;
  a quarantine write must not mask the original failure).
- :func:`load_bundle` — reconstruct the routing/capacities from disk.
- :func:`replay` — re-certify the stored rates, re-run the suspect
  backend against the exact reference, and (when the failure still
  reproduces) shrink the flow set with delta debugging
  (:func:`ddmin`) to a minimal failing reproducer, written alongside
  the original as ``<bundle>.min.json``.

Bundle filenames are content-addressed (``q-<reason>-<sha256[:12]>.json``),
so re-quarantining the same instance is idempotent.  The directory
defaults to ``./quarantine`` and is overridden with the
``REPRO_QUARANTINE_DIR`` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from fractions import Fraction
from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.errors import CertificateError, ReproError
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.routing import Link, Routing
from repro.failures.schedule import _node_from_data, _node_to_data
from repro.io.serialize import ScenarioError, read_json, write_json_atomic
from repro.obs import counter, get_logger

FORMAT_NAME = "repro-quarantine"
FORMAT_VERSION = 1

#: Environment variable overriding the bundle directory.
ENV_DIR = "REPRO_QUARANTINE_DIR"
DEFAULT_DIR = "quarantine"

#: Float-vs-exact comparison tolerance for replay disagreement checks —
#: matching the shadow-check tolerance in :mod:`repro.core.solve`.
REPLAY_TOL = 1e-6

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_BUNDLES = counter("quarantine.bundles")
_WRITE_ERRORS = counter("quarantine.write_errors")
_REPLAYS = counter("quarantine.replays")
_REPRODUCED = counter("quarantine.reproduced")

__all__ = [
    "DEFAULT_DIR",
    "ENV_DIR",
    "QuarantineBundle",
    "ReplayResult",
    "bundle_to_dict",
    "ddmin",
    "load_bundle",
    "quarantine_dir",
    "quarantine_failure",
    "replay",
    "write_bundle",
]


def quarantine_dir() -> str:
    """The directory bundles are written to (see module docstring)."""
    return os.environ.get(ENV_DIR, "").strip() or DEFAULT_DIR


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _rate_to_data(rate: Rate) -> Any:
    """Exact rates as ``"p/q"`` strings, floats as JSON numbers.

    Python's ``json`` emits floats via ``repr``, which round-trips
    IEEE-754 doubles bit-for-bit — so a float-backend defect replays on
    the exact bits that produced it.
    """
    if isinstance(rate, (Fraction, int)):
        fraction = Fraction(rate)
        return f"{fraction.numerator}/{fraction.denominator}"
    return float(rate)


def _rate_from_data(data: Any) -> Rate:
    if isinstance(data, str):
        if data == "inf":
            return float("inf")
        numerator, denominator = data.split("/")
        return Fraction(int(numerator), int(denominator))
    return float(data)


def _capacity_to_data(capacity: Rate) -> Any:
    if isinstance(capacity, float) and math.isinf(capacity):
        return "inf"
    return _rate_to_data(capacity)


def bundle_to_dict(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    reason: str,
    backend: str,
    exact: Optional[bool],
    seed: Optional[int] = None,
    context: str = "",
    failures: Sequence[str] = (),
    rates: Optional[Mapping[Flow, Rate]] = None,
) -> Dict[str, Any]:
    """The plain-data bundle document (deterministic for hashing)."""
    flows = routing.flows()
    capacity_entries = sorted(
        (
            [_node_to_data(u), _node_to_data(v), _capacity_to_data(cap)]
            for (u, v), cap in capacities.items()
        ),
    )
    document: Dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "reason": reason,
        "context": context,
        "backend": backend,
        "exact": exact,
        "seed": seed,
        "failures": list(failures),
        "flows": [
            {
                "src": _node_to_data(flow.source),
                "dst": _node_to_data(flow.dest),
                "tag": flow.tag,
                "path": [_node_to_data(node) for node in routing.path(flow)],
            }
            for flow in flows
        ],
        "capacities": capacity_entries,
    }
    if rates is not None:
        document["rates"] = {
            str(index): _rate_to_data(rates[flow])
            for index, flow in enumerate(flows)
            if flow in rates
        }
    return document


def write_bundle(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    reason: str,
    backend: str,
    exact: Optional[bool],
    seed: Optional[int] = None,
    context: str = "",
    failures: Sequence[str] = (),
    rates: Optional[Mapping[Flow, Rate]] = None,
    directory: Optional[str] = None,
) -> str:
    """Serialize a bundle atomically; returns its path.

    Unlike :func:`quarantine_failure`, errors propagate — use this when
    the caller (the replay minimizer, tests) needs the write to succeed.
    """
    document = bundle_to_dict(
        routing, capacities, reason, backend, exact,
        seed=seed, context=context, failures=failures, rates=rates,
    )
    digest = hashlib.sha256(
        json.dumps(document, sort_keys=True).encode("utf-8")
    ).hexdigest()[:12]
    target = os.path.join(
        directory if directory is not None else quarantine_dir(),
        f"q-{reason}-{digest}.json",
    )
    write_json_atomic(target, document)
    _BUNDLES.inc()
    return target


def quarantine_failure(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    reason: str,
    backend: str,
    exact: Optional[bool],
    seed: Optional[int] = None,
    context: str = "",
    failures: Sequence[str] = (),
    rates: Optional[Mapping[Flow, Rate]] = None,
    directory: Optional[str] = None,
) -> Optional[str]:
    """Best-effort bundle capture: returns the path, or ``None`` if the
    write itself failed (logged and counted, never raised — quarantine
    must not mask the solver failure being contained)."""
    try:
        return write_bundle(
            routing, capacities, reason, backend, exact,
            seed=seed, context=context, failures=failures, rates=rates,
            directory=directory,
        )
    except Exception as error:  # pragma: no cover - disk-full etc.
        _WRITE_ERRORS.inc()
        get_logger("quarantine").warning(
            "failed to write quarantine bundle", error=repr(error)
        )
        return None


class QuarantineBundle(NamedTuple):
    """A deserialized bundle (see :func:`load_bundle`)."""

    routing: Routing
    capacities: Dict[Link, Rate]
    reason: str
    backend: str
    exact: Optional[bool]
    seed: Optional[int]
    context: str
    failures: List[str]
    #: The rates the suspect backend produced, or ``None`` if unrecorded.
    rates: Optional[Dict[Flow, Rate]]
    path: Optional[str]


def _bundle_from_dict(
    document: Dict[str, Any], path: Optional[str] = None
) -> QuarantineBundle:
    if document.get("format") != FORMAT_NAME:
        raise ScenarioError(
            f"not a {FORMAT_NAME} document: format={document.get('format')!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ScenarioError(
            f"unsupported quarantine version: {document.get('version')!r}"
        )
    try:
        flows: List[Flow] = []
        assignment: Dict[Flow, Tuple] = {}
        for entry in document["flows"]:
            flow = Flow(
                _node_from_data(entry["src"]),
                _node_from_data(entry["dst"]),
                tag=int(entry.get("tag", 0)),
            )
            flows.append(flow)
            assignment[flow] = tuple(
                _node_from_data(node) for node in entry["path"]
            )
        capacities: Dict[Link, Rate] = {}
        for u, v, cap in document["capacities"]:
            link = (_node_from_data(u), _node_from_data(v))
            capacities[link] = (
                float("inf") if cap == "inf" else _rate_from_data(cap)
            )
        rates: Optional[Dict[Flow, Rate]] = None
        if document.get("rates") is not None:
            rates = {
                flows[int(index)]: _rate_from_data(value)
                for index, value in document["rates"].items()
            }
    except (KeyError, IndexError, TypeError, ValueError, ReproError) as error:
        raise ScenarioError(f"malformed quarantine bundle: {error}") from error
    return QuarantineBundle(
        routing=Routing(assignment),
        capacities=capacities,
        reason=str(document.get("reason", "")),
        backend=str(document.get("backend", "")),
        exact=document.get("exact"),
        seed=document.get("seed"),
        context=str(document.get("context", "")),
        failures=[str(f) for f in document.get("failures", [])],
        rates=rates,
        path=path,
    )


def load_bundle(path: str) -> QuarantineBundle:
    """Read and reconstruct a quarantine bundle from disk."""
    return _bundle_from_dict(read_json(path), path=path)


# ----------------------------------------------------------------------
# Replay + minimization
# ----------------------------------------------------------------------
def ddmin(items: Sequence, predicate) -> List:
    """Delta debugging (Zeller's ddmin over complements).

    Shrinks ``items`` to a small subset on which ``predicate`` still
    returns True.  ``predicate`` must hold on the full sequence; the
    result is 1-minimal with respect to the chunk sizes tried (removing
    any tried chunk breaks it).
    """
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            complement = current[:start] + current[start + chunk:]
            if complement and predicate(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


class ReplayResult(NamedTuple):
    """What :func:`replay` established about a bundle."""

    #: The failure still occurs when the suspect backend re-runs here.
    reproduced: bool
    #: Defects of the *stored* rates under the full certificate.
    stored_failures: List[str]
    #: Defects of the freshly recomputed rates (certificate + reference
    #: disagreement), empty when the live run is healthy.
    live_failures: List[str]
    #: Flow count of the minimized reproducer (== original if not run).
    minimized_flows: int
    #: Path of the minimized bundle, when minimization ran and shrank.
    minimized_path: Optional[str]


def _raw_solve(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    backend: str,
    exact: Optional[bool],
) -> Allocation:
    """One uncertified solve on ``backend`` (validation forced off)."""
    from repro.core.solve import solve_max_min
    from repro.validate import validation

    with validation("off"):
        return solve_max_min(routing, capacities, backend=backend, exact=exact)


def _live_failures(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    backend: str,
    exact: Optional[bool],
) -> List[str]:
    """Re-run the suspect backend and report every defect found live."""
    from repro.core.maxmin import max_min_fair
    from repro.validate import (
        allocation_failures,
        default_tolerance,
        rate_disagreements,
        validation,
    )

    try:
        allocation = _raw_solve(routing, capacities, backend, exact)
    except CertificateError as error:
        return list(error.failures)
    except ReproError as error:
        return [f"backend {backend!r} failed: {error}"]
    rates = allocation.rates()
    failures = allocation_failures(
        routing, capacities, allocation, level="full"
    )
    if backend != "reference":
        with validation("off"):
            reference = max_min_fair(routing, capacities, exact=True)
        tol = 0.0 if default_tolerance(rates) == 0.0 else REPLAY_TOL
        failures.extend(
            f"disagrees with reference: {diff}"
            for diff in rate_disagreements(rates, reference.rates(), tol=tol)
        )
    return failures


def replay(
    bundle, minimize: bool = True, directory: Optional[str] = None
) -> ReplayResult:
    """Re-run a quarantine bundle; optionally minimize the reproducer.

    ``bundle`` is a path or a :class:`QuarantineBundle`.  Three steps:

    1. re-certify the *stored* rates at ``full`` (deterministically
       reproduces the original certificate rejection);
    2. re-run the suspect backend on this machine and certify the fresh
       result against the exact reference;
    3. if the live run still fails and ``minimize`` is set, delta-debug
       the flow set down to a minimal failing subset and write it as a
       new bundle next to the original.
    """
    from repro.validate import allocation_failures

    if isinstance(bundle, str):
        bundle = load_bundle(bundle)
    _REPLAYS.inc()

    stored_failures: List[str] = []
    if bundle.rates is not None:
        covered = {
            flow: bundle.rates[flow]
            for flow in bundle.routing.flows()
            if flow in bundle.rates
        }
        if len(covered) < len(bundle.routing):
            stored_failures.append("stored rates do not cover every flow")
        else:
            stored_failures = allocation_failures(
                bundle.routing,
                bundle.capacities,
                Allocation(covered),
                level="full",
            )

    live_failures = _live_failures(
        bundle.routing, bundle.capacities, bundle.backend, bundle.exact
    )
    reproduced = bool(live_failures)
    if reproduced:
        _REPRODUCED.inc()

    minimized_flows = len(bundle.routing)
    minimized_path: Optional[str] = None
    if reproduced and minimize and len(bundle.routing) > 1:
        def still_fails(flows: Sequence[Flow]) -> bool:
            subset = Routing(
                {flow: bundle.routing.path(flow) for flow in flows}
            )
            return bool(
                _live_failures(
                    subset, bundle.capacities, bundle.backend, bundle.exact
                )
            )

        survivors = ddmin(bundle.routing.flows(), still_fails)
        minimized_flows = len(survivors)
        if minimized_flows < len(bundle.routing):
            minimized = Routing(
                {flow: bundle.routing.path(flow) for flow in survivors}
            )
            minimized_path = write_bundle(
                minimized,
                bundle.capacities,
                f"{bundle.reason}-min" if bundle.reason else "min",
                bundle.backend,
                bundle.exact,
                seed=bundle.seed,
                context=bundle.context,
                failures=_live_failures(
                    minimized, bundle.capacities, bundle.backend, bundle.exact
                ),
                directory=(
                    directory
                    if directory is not None
                    else (
                        os.path.dirname(bundle.path)
                        if bundle.path
                        else None
                    )
                ),
            )

    return ReplayResult(
        reproduced=reproduced,
        stored_failures=stored_failures,
        live_failures=live_failures,
        minimized_flows=minimized_flows,
        minimized_path=minimized_path,
    )
