"""Power-of-two-choices routing — distributed load balancing, localized.

ECMP hashes blindly; the greedy router needs global congestion state.
The classic middle ground from randomized load balancing (Azar et al.'s
"power of two choices") samples ``d`` random paths per flow and picks
the least congested among them — a *constant amount* of state probing
per flow that captures most of the benefit of full greedy placement.
We include it as a third point on §6's spectrum of routers: blind
(ECMP) → sampled (two-choice) → global greedy.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import InfeasibleRoutingError
from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.obs import counter
from repro.routers.greedy import check_flows_in_network, macro_switch_demands

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_DECISIONS = counter("router.two_choice.path_decisions")
_PROBES = counter("router.two_choice.probes")


def two_choice_routing(
    network: ClosNetwork,
    flows: FlowCollection,
    demands: Optional[Mapping[Flow, Fraction]] = None,
    choices: int = 2,
    seed: int = 0,
) -> Routing:
    """Sample ``choices`` middle switches per flow; take the least congested.

    Congestion of a candidate is the resulting maximum of the flow's two
    interior-link loads (demand-weighted, like the greedy router).
    ``demands`` defaults to the macro-switch max-min rates.  With
    ``choices = 1`` this degenerates to random routing; with
    ``choices = num_middles`` it becomes the greedy router in arrival
    order.
    """
    if choices < 1:
        raise InfeasibleRoutingError(f"choices must be >= 1, got {choices}")
    check_flows_in_network(network, flows)
    if demands is None:
        demands = macro_switch_demands(network, flows)

    rng = random.Random(seed)
    num_middles = network.num_middles
    up: Dict[Tuple[int, int], Fraction] = {}
    down: Dict[Tuple[int, int], Fraction] = {}
    for i in range(1, 2 * network.n + 1):
        for m in range(1, num_middles + 1):
            up[(i, m)] = Fraction(0)
            down[(m, i)] = Fraction(0)

    middles: Dict[Flow, int] = {}
    for flow in flows:
        demand = Fraction(demands[flow])
        i, o = flow.source.switch, flow.dest.switch
        sample_size = min(choices, num_middles)
        candidates = rng.sample(range(1, num_middles + 1), sample_size)
        best_m, best_congestion = None, None
        for m in candidates:
            _PROBES.inc()
            # max(up + d, down + d) = max(up, down) + d: comparing
            # without the flow's own demand picks the same candidate.
            congestion = max(up[(i, m)], down[(m, o)])
            if best_congestion is None or congestion < best_congestion:
                best_m, best_congestion = m, congestion
        middles[flow] = best_m
        _DECISIONS.inc()
        up[(i, best_m)] += demand
        down[(best_m, o)] += demand

    return Routing.from_middles(network, flows, middles)
