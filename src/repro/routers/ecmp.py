"""ECMP — Equal-Cost Multi-Path routing (§6, "the long-standing algorithm").

ECMP assigns each flow to one of its equal-cost source–destination paths
chosen (pseudo-)uniformly at random, typically by hashing the flow
5-tuple.  We model the hash as a seeded PRNG draw per flow, which is
deterministic given ``seed`` and independent of the order flows are
presented in (each flow hashes its own identity).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.obs import counter

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_ECMP_DECISIONS = counter("router.ecmp.path_decisions")
_RANDOM_DECISIONS = counter("router.random.path_decisions")


def _flow_hash(flow: Flow, seed: int) -> int:
    """A stable per-flow hash (independent of PYTHONHASHSEED)."""
    payload = repr((flow.source, flow.dest, flow.tag, seed)).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def ecmp_routing(
    network: ClosNetwork, flows: FlowCollection, seed: int = 0
) -> Routing:
    """Hash-based ECMP: each flow picks a middle switch from its own hash.

    >>> clos = ClosNetwork(2)
    >>> from repro.workloads.stochastic import permutation
    >>> routing = ecmp_routing(clos, permutation(clos, seed=1))
    >>> len(routing) == 2 * clos.n ** 2
    True
    """
    middles: Dict[Flow, int] = {
        flow: (_flow_hash(flow, seed) % network.num_middles) + 1 for flow in flows
    }
    _ECMP_DECISIONS.inc(len(middles))
    return Routing.from_middles(network, flows, middles)


def random_routing(
    network: ClosNetwork, flows: FlowCollection, seed: int = 0
) -> Routing:
    """Per-flow independent uniform choice via a shared PRNG stream.

    Unlike :func:`ecmp_routing` the outcome depends on flow order; used
    as a randomized baseline in ablations.
    """
    rng = random.Random(seed)
    middles = {flow: rng.randint(1, network.num_middles) for flow in flows}
    _RANDOM_DECISIONS.inc(len(middles))
    return Routing.from_middles(network, flows, middles)
