"""Data-center routing algorithms (§6): ECMP, greedy, congestion local search."""

from repro.routers.congestion_local_search import (
    local_search_congestion,
    max_congestion,
)
from repro.routers.ecmp import ecmp_routing, random_routing
from repro.routers.greedy import greedy_least_congested, macro_switch_demands
from repro.routers.two_choice import two_choice_routing

__all__ = [
    "ecmp_routing",
    "greedy_least_congested",
    "local_search_congestion",
    "macro_switch_demands",
    "max_congestion",
    "random_routing",
    "two_choice_routing",
]
