"""Greedy congestion-aware routing (§6's Hedera/CONGA family).

State-of-the-art data-center routing algorithms "assume that flows are
offered to the data-center with their macro-switch rates, and their goal
is to minimize maximum link congestion", assigning each flow to the path
of least congestion (§6).  This module implements that family:

1. Compute each flow's macro-switch max-min rate (its *demand*).
2. Process flows in decreasing demand order (elephants first — the
   first-fit-decreasing heuristic the multirate-rearrangeability
   literature uses).
3. Assign each flow to the middle switch minimizing the resulting *path
   congestion* — the maximum over the path's links of (total demand on
   the link) / capacity.

The router returns a routing; callers then apply the *actual* congestion
control (water-filling) to see what rates materialize.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import InfeasibleRoutingError
from repro.core.flows import Flow, FlowCollection
from repro.core.objectives import macro_switch_max_min
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.obs import counter, trace_span

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_DECISIONS = counter("router.greedy.path_decisions")


def check_flows_in_network(network: ClosNetwork, flows: FlowCollection) -> None:
    """Reject flows whose endpoints lie outside ``network``.

    Demand-ordered routers index per-ToR congestion tables directly, so
    a foreign flow would otherwise surface as a bare ``KeyError`` deep
    in the placement loop.
    """
    for flow in flows:
        network._check_server_indices(flow.source.switch, flow.source.server)
        network._check_server_indices(flow.dest.switch, flow.dest.server)


def macro_switch_demands(
    network: ClosNetwork, flows: FlowCollection
) -> Dict[Flow, Fraction]:
    """Each flow's macro-switch max-min fair rate (the demand greedy uses)."""
    macro = MacroSwitch(network.n)
    allocation = macro_switch_max_min(macro, flows)
    return allocation.rates()


def greedy_least_congested(
    network: ClosNetwork,
    flows: FlowCollection,
    demands: Optional[Mapping[Flow, Fraction]] = None,
) -> Routing:
    """First-fit-decreasing assignment to the least-congested path.

    ``demands`` defaults to the macro-switch max-min rates.  Ties between
    equally congested paths break toward the lowest middle-switch index,
    making the router deterministic.
    """
    check_flows_in_network(network, flows)
    if demands is None:
        demands = macro_switch_demands(network, flows)
    else:
        undemanded = [f for f in flows if f not in demands]
        if undemanded:
            raise InfeasibleRoutingError(
                f"no demand given for flows: {undemanded!r}"
            )

    n = network.num_middles
    up: Dict[Tuple[int, int], Fraction] = {}
    down: Dict[Tuple[int, int], Fraction] = {}
    for i in range(1, 2 * network.n + 1):
        for m in range(1, n + 1):
            up[(i, m)] = Fraction(0)
            down[(m, i)] = Fraction(0)

    order = sorted(flows, key=lambda f: (-demands[f], f.source, f.dest, f.tag))
    middles: Dict[Flow, int] = {}
    with trace_span("router.greedy", flows=len(order)):
        for flow in order:
            demand = Fraction(demands[flow])
            i, o = flow.source.switch, flow.dest.switch
            best_m, best_congestion = 1, None
            for m in range(1, n + 1):
                # max(up + d, down + d) = max(up, down) + d: the flow's
                # own demand shifts every candidate equally, so compare
                # without the 2n Fraction additions per placement.
                congestion = up[(i, m)]
                downlink = down[(m, o)]
                if downlink > congestion:
                    congestion = downlink
                if best_congestion is None or congestion < best_congestion:
                    best_m, best_congestion = m, congestion
            middles[flow] = best_m
            _DECISIONS.inc()
            up[(i, best_m)] += demand
            down[(best_m, o)] += demand

    return Routing.from_middles(network, flows, middles)
