"""Local-search congestion minimization (§6's local-search family).

Starting from any routing (typically greedy or ECMP), repeatedly move a
single flow to a different middle switch whenever the move reduces the
network's congestion profile, where the *congestion* of a link is total
demand / capacity and profiles are compared by their sorted vectors in
decreasing order (so reducing the most congested link matters first —
the standard "min-max congestion, then next, ..." refinement).

This is the demand-oblivious counterpart of
:mod:`repro.search.local_search` (which optimizes actual max-min-fair
rate vectors): it only sees demands, like real traffic-engineering
systems, and is therefore much cheaper per move.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.obs import counter, trace_span
from repro.routers.greedy import macro_switch_demands

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_ROUNDS = counter("router.congestion_search.rounds")
_MOVES = counter("router.congestion_search.moves_accepted")


def _congestion_profile(
    network: ClosNetwork,
    middles: Mapping[Flow, int],
    demands: Mapping[Flow, Fraction],
) -> List[Fraction]:
    """Interior-link congestions, sorted descending (unit capacities)."""
    n = network.num_middles
    up: Dict[Tuple[int, int], Fraction] = {}
    down: Dict[Tuple[int, int], Fraction] = {}
    for flow, m in middles.items():
        demand = Fraction(demands[flow])
        i, o = flow.source.switch, flow.dest.switch
        up[(i, m)] = up.get((i, m), Fraction(0)) + demand
        down[(m, o)] = down.get((m, o), Fraction(0)) + demand
    return sorted(list(up.values()) + list(down.values()), reverse=True)


def max_congestion(
    network: ClosNetwork,
    routing: Routing,
    demands: Mapping[Flow, Fraction],
) -> Fraction:
    """The maximum interior-link congestion of ``routing`` under ``demands``."""
    profile = _congestion_profile(network, routing.middles(network), demands)
    return profile[0] if profile else Fraction(0)


def local_search_congestion(
    network: ClosNetwork,
    flows: FlowCollection,
    initial: Optional[Routing] = None,
    demands: Optional[Mapping[Flow, Fraction]] = None,
    max_rounds: int = 100,
) -> Routing:
    """Hill-climb on the sorted congestion profile with single-flow moves.

    ``initial`` defaults to routing every flow through middle switch 1
    (so the search's progress is visible even without a greedy warm
    start); pass a greedy routing for the production configuration.
    """
    if demands is None:
        demands = macro_switch_demands(network, flows)
    if initial is None:
        initial = Routing.uniform(network, flows, 1)

    middles = dict(initial.middles(network))
    best_profile = _congestion_profile(network, middles, demands)
    with trace_span("router.congestion_search", flows=len(middles)):
        for _ in range(max_rounds):
            _ROUNDS.inc()
            improved = False
            for flow in list(middles):
                here = middles[flow]
                for m in range(1, network.num_middles + 1):
                    if m == here:
                        continue
                    middles[flow] = m
                    profile = _congestion_profile(network, middles, demands)
                    if profile < best_profile:
                        best_profile = profile
                        improved = True
                        _MOVES.inc()
                        break
                    middles[flow] = here
                if improved:
                    break
            if not improved:
                break
    return Routing.from_middles(network, flows, middles)
