"""Experiment E9 — probing §7's open question on relative-max-min fairness.

Can routing guarantee every flow a constant fraction of its macro-switch
rate?  Three measurements:

1. **Exact objective comparison** on exhaustively solvable instances
   (Example 2.3 and random C_2 collections): the floor achieved by the
   lex-max-min routing, the throughput-max-min routing, and the
   relative-max-min optimum.  Expected shape: relative-max-min ≥ the
   others; throughput-max-min can be terrible (it may zero flows).

2. **The Theorem 4.3 construction**: lex-max-min's floor is 1/n (the
   starved type-3 flow).  Relative-max-min local search, started from
   the lex-optimal routing, probes whether re-balancing can raise the
   floor above 1/n — quantifying how much of the starvation is the
   objective's fault and how much is topological.

3. **Stochastic floors**: the relative floor greedy/ECMP routing
   achieves on random workloads, contextualizing the adversarial gap.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence

from repro.core.allocation import Allocation
from repro.core.maxmin import max_min_fair
from repro.core.objectives import (
    lex_max_min_fair,
    macro_switch_max_min,
    throughput_max_min_fair,
)
from repro.core.relative import (
    floor_of_routing,
    improve_routing_relative,
    ratio_vector,
    relative_max_min_fair,
)
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.routers.ecmp import ecmp_routing
from repro.routers.greedy import greedy_least_congested
from repro.workloads.adversarial import example_2_3, lemma_4_6_routing, theorem_4_3
from repro.workloads.stochastic import uniform_random


class ObjectiveFloorRow(NamedTuple):
    """Exact floors of the three objectives on one instance."""

    instance: str
    lex_floor: Fraction
    throughput_floor: Fraction
    relative_floor: Fraction
    relative_dominates: bool


def exact_objective_comparison(
    seeds: Sequence[int] = range(3), num_flows: int = 5
) -> List[ObjectiveFloorRow]:
    """E9 part 1: exact floors on exhaustively solvable instances."""
    rows: List[ObjectiveFloorRow] = []

    def measure(name: str, network: ClosNetwork, flows) -> ObjectiveFloorRow:
        macro = macro_switch_max_min(MacroSwitch(network.n), flows)
        lex = lex_max_min_fair(network, flows)
        thr = throughput_max_min_fair(network, flows)
        rel = relative_max_min_fair(network, flows, macro_allocation=macro)
        lex_floor = ratio_vector(lex.allocation, macro)[0]
        thr_floor = ratio_vector(thr.allocation, macro)[0]
        return ObjectiveFloorRow(
            instance=name,
            lex_floor=lex_floor,
            throughput_floor=thr_floor,
            relative_floor=rel.floor,
            relative_dominates=bool(
                rel.floor >= lex_floor and rel.floor >= thr_floor
            ),
        )

    instance = example_2_3()
    rows.append(measure("example_2_3", instance.clos, instance.flows))
    network = ClosNetwork(2)
    for seed in seeds:
        flows = uniform_random(network, num_flows, seed=seed)
        rows.append(measure(f"uniform/seed{seed}", network, flows))
    return rows


class Theorem43FloorRow(NamedTuple):
    """Floors on the Theorem 4.3 construction at one size."""

    n: int
    lex_floor: Fraction  # 1/n by Theorem 4.3 (via the type-3 flow)
    relative_local_floor: Fraction  # best found by hill-climbing
    improvement: Fraction  # relative_local_floor / lex_floor


def theorem_4_3_floor_probe(sizes: Sequence[int] = (3, 4)) -> List[Theorem43FloorRow]:
    """E9 part 2: does re-balancing beat the 1/n floor of lex-max-min?"""
    rows: List[Theorem43FloorRow] = []
    for n in sizes:
        instance = theorem_4_3(n)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        lex_routing = lemma_4_6_routing(instance)
        lex_floor = floor_of_routing(instance.clos, lex_routing, macro)
        improved = improve_routing_relative(
            instance.clos, lex_routing, macro, max_rounds=50
        )
        rows.append(
            Theorem43FloorRow(
                n=n,
                lex_floor=lex_floor,
                relative_local_floor=improved.floor,
                improvement=improved.floor / lex_floor,
            )
        )
    return rows


class StochasticFloorRow(NamedTuple):
    """Relative floors achieved by practical routers on random traffic."""

    seed: int
    ecmp_floor: Fraction
    greedy_floor: Fraction


def stochastic_floors(
    n: int = 3, num_flows: int = 25, seeds: Sequence[int] = range(3)
) -> List[StochasticFloorRow]:
    """E9 part 3: floors of ECMP and greedy routing on random workloads."""
    network = ClosNetwork(n)
    rows: List[StochasticFloorRow] = []
    for seed in seeds:
        flows = uniform_random(network, num_flows, seed=seed)
        macro = macro_switch_max_min(MacroSwitch(n), flows)
        rows.append(
            StochasticFloorRow(
                seed=seed,
                ecmp_floor=floor_of_routing(
                    network, ecmp_routing(network, flows, seed=seed), macro
                ),
                greedy_floor=floor_of_routing(
                    network, greedy_least_congested(network, flows), macro
                ),
            )
        )
    return rows
