"""Experiment E16 — the §1 premise: splittability restores the macro-switch.

The paper's impossibilities all assume *unsplittable* flows; §1 recalls
that with splittable flows the Clos network and its macro-switch are
equivalent.  This experiment verifies the equivalence computationally:

- on random workloads, the splittable max-min fair allocation in
  ``C_n`` equals the macro-switch max-min allocation (LP precision);
- on the Theorem 4.3 construction — where the best *unsplittable*
  routing starves the type-3 flow to 1/n — splitting restores its full
  macro rate 1, isolating unsplittability as the only culprit.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence

from repro.core.objectives import macro_switch_max_min
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.lp.splittable_maxmin import splittable_max_min_fair
from repro.workloads.adversarial import theorem_4_3
from repro.workloads.stochastic import uniform_random


class EquivalenceRow(NamedTuple):
    """One instance's splittable-vs-macro comparison."""

    instance: str
    num_flows: int
    worst_gap: float  # max over flows of |splittable − macro| (floats)
    equivalent: bool  # worst_gap below LP precision


class StarvationReversalRow(NamedTuple):
    """The Theorem 4.3 type-3 flow: unsplittable vs splittable."""

    n: int
    macro_rate: float  # 1
    unsplittable_rate: float  # 1/n (Theorem 4.3)
    splittable_rate: float  # back to 1


def random_equivalence(
    n: int = 2, num_flows: int = 10, seeds: Sequence[int] = range(3)
) -> List[EquivalenceRow]:
    """E16 part 1: splittable C_n rates == macro-switch rates."""
    clos = ClosNetwork(n)
    macro_network = MacroSwitch(n)
    rows: List[EquivalenceRow] = []
    for seed in seeds:
        flows = uniform_random(clos, num_flows, seed=seed)
        macro = macro_switch_max_min(macro_network, flows)
        split = splittable_max_min_fair(clos, flows)
        worst = max(
            abs(float(macro.rate(f)) - split.rate(f)) for f in flows
        )
        rows.append(
            EquivalenceRow(
                instance=f"uniform/seed{seed}",
                num_flows=num_flows,
                worst_gap=worst,
                equivalent=worst < 1e-6,
            )
        )
    return rows


def starvation_reversal(sizes: Sequence[int] = (3,)) -> List[StarvationReversalRow]:
    """E16 part 2: splitting undoes Theorem 4.3's starvation."""
    rows: List[StarvationReversalRow] = []
    for n in sizes:
        instance = theorem_4_3(n)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        split = splittable_max_min_fair(instance.clos, instance.flows)
        (type3,) = instance.types["type3"]
        rows.append(
            StarvationReversalRow(
                n=n,
                macro_rate=float(macro.rate(type3)),
                unsplittable_rate=1.0 / n,  # Theorem 4.3's lex-max-min rate
                splittable_rate=split.rate(type3),
            )
        )
    return rows
