"""Experiment E7 — Lemma 5.2: ``T^{T-MT} = T^MT`` via König coloring.

For random and adversarial flow collections, compute the macro-switch
maximum throughput (matching), build the constructive link-disjoint
routing of the matched flows (König ``n``-coloring of ``G^C``), and
check that transmitting matched flows at rate 1 is feasible in the Clos
network — i.e. the Clos network loses *no* throughput relative to the
macro-switch when fairness is not required.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence

from repro.core.allocation import is_feasible
from repro.core.throughput import max_throughput_value, throughput_max_throughput
from repro.core.topology import ClosNetwork
from repro.workloads.adversarial import theorem_4_3, theorem_5_4
from repro.workloads.stochastic import hotspot, permutation, uniform_random


class KonigRow(NamedTuple):
    """One equivalence check."""

    workload: str
    n: int
    num_flows: int
    t_mt_macro: int  # maximum matching in G^MS
    t_mt_clos: object  # throughput of the link-disjoint routing
    feasible: bool  # routing satisfies Clos capacities
    equal: bool  # Lemma 5.2's claim


def _check(name: str, network: ClosNetwork, flows) -> KonigRow:
    t_macro = max_throughput_value(flows)
    routing, allocation = throughput_max_throughput(network, flows)
    feasible = is_feasible(routing, allocation, network.graph.capacities())
    return KonigRow(
        workload=name,
        n=network.n,
        num_flows=len(flows),
        t_mt_macro=t_macro,
        t_mt_clos=allocation.throughput(),
        feasible=feasible,
        equal=bool(allocation.throughput() == t_macro),
    )


def equivalence_checks(
    n: int = 4, num_flows: int = 40, seeds: Sequence[int] = range(3)
) -> List[KonigRow]:
    """Lemma 5.2 across stochastic and adversarial workloads."""
    network = ClosNetwork(n)
    rows: List[KonigRow] = []
    for seed in seeds:
        rows.append(
            _check("uniform", network, uniform_random(network, num_flows, seed=seed))
        )
        rows.append(_check("permutation", network, permutation(network, seed=seed)))
        rows.append(
            _check("hotspot", network, hotspot(network, num_flows, seed=seed))
        )
    adversarial_43 = theorem_4_3(3)
    rows.append(_check("theorem_4_3", adversarial_43.clos, adversarial_43.flows))
    adversarial_54 = theorem_5_4(5, 2)
    rows.append(_check("theorem_5_4", adversarial_54.clos, adversarial_54.flows))
    return rows
