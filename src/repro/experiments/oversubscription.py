"""Experiment E15 — breaking the full-bisection premise.

Everything positive the paper says about Clos networks rides on *full
bisection bandwidth* (§1): demand satisfaction for splittable flows and
throughput preservation for matchings (Lemma 5.2).  Production fabrics
are routinely *oversubscribed* — interior links thinner than server
links.  This experiment sweeps the interior capacity ``c`` from 1 (the
paper's premise) downward and measures which guarantees survive:

- **Lemma 5.2's equality** ``T^{T-MT} = T^MT``: at ``c < 1`` a matched
  flow can no longer run at server-link rate through a single middle
  switch, so the Clos network's maximum throughput falls below the
  macro-switch's — the folklore lemma is *sharp* in its premise.
- **Splittable demand satisfaction**: macro-switch max-min rates stop
  being splittably routable once total per-ToR demand exceeds the
  shrunken uplink capacity.
- **Throughput and fairness under greedy routing**: graceful decay of
  throughput fraction and worst-flow ratio as oversubscription grows.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence, Tuple

from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.lp.feasibility import splittable_feasible
from repro.lp.maxthroughput import max_throughput_lp
from repro.parallel import parallel_map
from repro.routers.greedy import greedy_least_congested
from repro.workloads.stochastic import permutation, uniform_random


class OversubscriptionRow(NamedTuple):
    """One interior-capacity level."""

    interior_capacity: Fraction
    oversubscription: Fraction  # n·1 / (n·c) = 1/c
    #: Lemma 5.2 check: best throughput achievable inside the Clos
    #: network for the greedy routing (LP upper bound) vs T^MT.
    t_mt_macro: int
    t_clos_lp: float
    lemma_5_2_equality: bool
    #: are the macro-switch max-min rates still splittably routable?
    splittable_ok: bool
    #: greedy routing + water-filling vs the macro-switch allocation
    throughput_fraction: float
    min_rate_ratio: float


def _sweep_point(
    task: Tuple[int, Fraction, int, int]
) -> OversubscriptionRow:
    """One interior-capacity level of E15 (module-level: picklable).

    Rebuilds the reference network/workload from ``(n, num_flows, seed)``
    — deterministic, so every capacity level sees identical flows and
    macro rates regardless of which process computes it.
    """
    n, capacity, num_flows, seed = task
    macro_network = MacroSwitch(n)
    reference = ClosNetwork(n)
    flows = uniform_random(reference, num_flows, seed=seed)
    macro_alloc = macro_switch_max_min(macro_network, flows)
    t_mt = max_throughput_value(flows)

    network = ClosNetwork(n, interior_capacity=capacity)
    routing = greedy_least_congested(network, flows)
    graph_capacities = network.graph.capacities()

    # LP max throughput for the greedy routing inside this fabric —
    # an achievable value; with c = 1 and a matching-aware routing it
    # reaches T^MT (Lemma 5.2), below 1 it cannot.
    from repro.core.throughput import throughput_max_throughput

    try:
        disjoint_routing, _ = throughput_max_throughput(reference, flows)
        # re-cost the link-disjoint routing in the degraded fabric
        t_clos, _ = max_throughput_lp(disjoint_routing, graph_capacities)
    except Exception:  # pragma: no cover - degree > n instances
        t_clos, _ = max_throughput_lp(routing, graph_capacities)

    alloc = max_min_fair(routing, graph_capacities)
    ratios = [
        float(alloc.rate(f) / macro_alloc.rate(f))
        for f in flows
        if macro_alloc.rate(f) > 0
    ]
    return OversubscriptionRow(
        interior_capacity=capacity,
        oversubscription=Fraction(1, 1) / capacity,
        t_mt_macro=t_mt,
        t_clos_lp=t_clos,
        lemma_5_2_equality=abs(t_clos - t_mt) < 1e-9,
        splittable_ok=splittable_feasible(
            network, flows, macro_alloc.rates()
        ),
        throughput_fraction=float(
            alloc.throughput() / macro_alloc.throughput()
        ),
        min_rate_ratio=min(ratios),
    )


def sweep(
    n: int = 3,
    capacities: Sequence[Fraction] = (
        Fraction(1),
        Fraction(3, 4),
        Fraction(1, 2),
        Fraction(1, 4),
    ),
    num_flows: int = 24,
    seed: int = 0,
    jobs: int = 1,
) -> List[OversubscriptionRow]:
    """The E15 sweep on a uniform-random workload."""
    tasks = [(n, capacity, num_flows, seed) for capacity in capacities]
    return parallel_map(_sweep_point, tasks, jobs=jobs)


class PermutationRow(NamedTuple):
    """Permutation traffic: the cleanest oversubscription victim."""

    interior_capacity: Fraction
    per_flow_rate: Fraction  # uniform max-min rate under greedy
    expected: Fraction  # min(c, 1): uplinks cap each server's flow


def _permutation_point(task: Tuple[int, Fraction, int]) -> PermutationRow:
    """One capacity level of the permutation sweep (picklable)."""
    n, capacity, seed = task
    reference = ClosNetwork(n)
    flows = permutation(reference, seed=seed)
    network = ClosNetwork(n, interior_capacity=capacity)
    from repro.core.throughput import link_disjoint_routing

    routing = link_disjoint_routing(network, flows)
    alloc = max_min_fair(routing, network.graph.capacities())
    rates = set(alloc.rates().values())
    assert len(rates) == 1, rates
    return PermutationRow(
        interior_capacity=capacity,
        per_flow_rate=rates.pop(),
        expected=min(capacity, Fraction(1)),
    )


def permutation_sweep(
    n: int = 3,
    capacities: Sequence[Fraction] = (
        Fraction(1),
        Fraction(1, 2),
        Fraction(1, 4),
    ),
    seed: int = 0,
    jobs: int = 1,
) -> List[PermutationRow]:
    """Permutation traffic under oversubscription has a closed form:
    a perfect matching of unit demands gets exactly ``min(c, 1)`` per
    flow when routed link-disjointly (each flow alone on its uplink)."""
    tasks = [(n, capacity, seed) for capacity in capacities]
    return parallel_map(_permutation_point, tasks, jobs=jobs)
