"""Experiment E5 — Figure 4 / Theorem 5.4 (R3): Doom-Switch throughput.

Sweeps the Figure 4 construction over network size ``n`` (odd) and
parallel-flow count ``k`` and reports, for each point:

- ``T^MmF`` — the macro-switch max-min throughput, measured;
- the Doom-Switch routing's max-min throughput (a lower bound on
  ``T^{T-MmF}``), measured;
- the gain and the paper's prediction ``2(1 − ε)``,
  ``ε = (k+n)/((n−1)(k+2))``;
- the number of flows whose rates the gain sacrifices (rate below their
  macro rate) — the paper's "zeroing the rates of most flows" caveat
  made quantitative.

Also checks the universal upper bound ``T^{T-MmF} ≤ 2 · T^MmF`` exactly
on small instances by exhaustive search, and statistically (via the
Doom-Switch lower bound) on the sweep.
"""

from __future__ import annotations

import functools
from fractions import Fraction
from typing import List, NamedTuple, Sequence, Tuple

from repro.analysis.metrics import compare_to_macro
from repro.core.doom_switch import doom_switch
from repro.core.objectives import macro_switch_max_min, throughput_max_min_fair
from repro.core.theorems import theorem_5_4 as predict
from repro.parallel import parallel_map
from repro.workloads.adversarial import theorem_5_4
from repro.workloads.stochastic import uniform_random
from repro.core.topology import ClosNetwork, MacroSwitch


class DoomSwitchRow(NamedTuple):
    """One sweep point of E5."""

    n: int
    k: int
    t_macro_max_min: Fraction
    t_doom: Fraction
    gain: Fraction
    predicted_gain: Fraction
    upper_bound_holds: bool  # gain ≤ 2
    num_flows: int
    num_degraded: int  # flows below their macro-switch rate
    min_rate_ratio: Fraction  # worst flow's (network rate / macro rate)


def _sweep_point(point: Tuple[int, int], backend: str = None) -> DoomSwitchRow:
    """One (n, k) of the Theorem 5.4 sweep (module-level: picklable).

    ``backend="quotient"`` solves both allocations by symmetry
    reduction, extending the exact sweep to n ≥ 64.
    """
    n, k = point
    instance = theorem_5_4(n, k)
    macro = macro_switch_max_min(instance.macro, instance.flows, backend=backend)
    result = doom_switch(instance.clos, instance.flows, backend=backend)
    prediction = predict(n, k)
    comparison = compare_to_macro(result.allocation, macro)
    gain = result.allocation.throughput() / macro.throughput()
    return DoomSwitchRow(
        n=n,
        k=k,
        t_macro_max_min=macro.throughput(),
        t_doom=result.allocation.throughput(),
        gain=gain,
        predicted_gain=prediction.gain,
        upper_bound_holds=bool(gain <= 2),
        num_flows=len(instance.flows),
        num_degraded=comparison.num_degraded,
        min_rate_ratio=comparison.min_ratio,
    )


def _sweep_rows_batched(
    points: Sequence[Tuple[int, int]], jobs: int
) -> List[DoomSwitchRow]:
    """E5 with every point's two solves stacked into one float batch.

    The macro-switch and Doom-Switch allocations of all (n, k) points
    become one block-diagonal batch solved by
    :func:`repro.core.batched.solve_max_min_batch`; throughputs, gains,
    and degradation counts are then computed from the float rates (the
    ``upper_bound_holds`` check gains a 1e-9 slack for rounding).
    """
    from repro.core.batched import solve_max_min_batch
    from repro.core.doom_switch import doom_switch_routing
    from repro.core.routing import Routing

    instances = [theorem_5_4(n, k) for n, k in points]
    pairs = []
    for instance in instances:
        macro_routing = Routing.for_macro_switch(
            instance.macro, instance.flows
        )
        pairs.append((macro_routing, instance.macro.graph.capacities()))
        pairs.append(
            (
                doom_switch_routing(instance.clos, instance.flows),
                instance.clos.graph.capacities(),
            )
        )
    allocations = solve_max_min_batch(pairs, jobs=jobs)

    rows: List[DoomSwitchRow] = []
    for index, ((n, k), instance) in enumerate(zip(points, instances)):
        macro = allocations[2 * index]
        alloc = allocations[2 * index + 1]
        prediction = predict(n, k)
        comparison = compare_to_macro(alloc, macro)
        gain = alloc.throughput() / macro.throughput()
        rows.append(
            DoomSwitchRow(
                n=n,
                k=k,
                t_macro_max_min=macro.throughput(),
                t_doom=alloc.throughput(),
                gain=gain,
                predicted_gain=prediction.gain,
                upper_bound_holds=bool(gain <= 2 + 1e-9),
                num_flows=len(instance.flows),
                num_degraded=comparison.num_degraded,
                min_rate_ratio=comparison.min_ratio,
            )
        )
    return rows


def sweep(
    points: Sequence[Tuple[int, int]] = (
        (5, 1),
        (7, 1),
        (9, 1),
        (7, 4),
        (9, 4),
        (11, 8),
        (13, 16),
    ),
    jobs: int = 1,
    backend: str = None,
) -> List[DoomSwitchRow]:
    """The (n, k) sweep of Theorem 5.4's tight construction.

    Pass ``backend="quotient"`` to extend the exact sweep to n ≥ 64
    (e.g. ``points=((65, 8),)`` — n must be odd), or
    ``backend="batched"`` to solve every point's allocations in one
    block-diagonal float batch (fastest for wide sweeps;
    ``jobs > 1`` then splits the batch over shared memory).
    """
    if backend == "batched":
        return _sweep_rows_batched(points, jobs)
    point = functools.partial(_sweep_point, backend=backend)
    return parallel_map(point, points, jobs=jobs)


class ExactBoundRow(NamedTuple):
    """Exhaustive T-MmF vs macro MmF on one small random instance."""

    n: int
    num_flows: int
    seed: int
    t_macro_max_min: Fraction
    t_t_mmf: Fraction  # exact optimum over all routings
    gain: Fraction
    upper_bound_holds: bool


def _exact_bound_point(task: Tuple[int, int, int]) -> ExactBoundRow:
    """One seeded instance of the exact bound check (picklable)."""
    n, num_flows, seed = task
    clos = ClosNetwork(n)
    macro_network = MacroSwitch(n)
    flows = uniform_random(clos, num_flows, seed=seed)
    macro = macro_switch_max_min(macro_network, flows)
    optimum = throughput_max_min_fair(clos, flows)
    gain = optimum.allocation.throughput() / macro.throughput()
    return ExactBoundRow(
        n=n,
        num_flows=num_flows,
        seed=seed,
        t_macro_max_min=macro.throughput(),
        t_t_mmf=optimum.allocation.throughput(),
        gain=gain,
        upper_bound_holds=bool(gain <= 2),
    )


def exact_bound_check(
    n: int = 2,
    num_flows: int = 6,
    seeds: Sequence[int] = range(4),
    jobs: int = 1,
) -> List[ExactBoundRow]:
    """Exact verification of ``T^{T-MmF} ≤ 2 T^MmF`` on random instances."""
    tasks = [(n, num_flows, seed) for seed in seeds]
    return parallel_map(_exact_bound_point, tasks, jobs=jobs)
