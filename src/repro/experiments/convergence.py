"""Experiment E11 — from protocol to idealization: convergence dynamics.

The paper's model hands every routing a max-min fair allocation "for
free" (§2.2's congestion-control idealization).  This experiment closes
the gap to a mechanism: a distributed explicit-rate iteration
(Bertsekas–Gallager-style link fair shares) run on the paper's own
constructions converges to *exactly* the allocations the theorems talk
about, and quickly; an AIMD caricature converges only roughly.

Shape to expect:

- fair-share dynamics reach the oracle allocation (≤ 1e-9) within a
  handful of rounds — about one round per distinct bottleneck level;
- rounds grow slowly with network size on the Theorem 4.3 construction;
- AIMD's time-average rates track the max-min shares loosely (right
  ordering, sawtooth-deflated magnitudes).
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence, Tuple

from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.dynamics.waterlevel import AimdDynamics, LinkFairShareDynamics
from repro.parallel import parallel_map
from repro.workloads.adversarial import (
    example_2_3,
    example_2_3_routings,
    lemma_4_6_routing,
    theorem_4_3,
)
from repro.workloads.stochastic import uniform_random
from repro.routers.ecmp import ecmp_routing


class ConvergenceRow(NamedTuple):
    """One instance's convergence report."""

    instance: str
    num_flows: int
    rounds: int
    converged: bool
    max_error: float  # vs the centralized water-filling oracle
    distinct_levels: int  # number of distinct max-min rates


def _measure(name: str, routing: Routing, capacities) -> ConvergenceRow:
    oracle = max_min_fair(routing, capacities, exact=False)
    trace = LinkFairShareDynamics(routing, capacities).run(max_rounds=300)
    max_error = max(
        abs(trace.rates[f] - oracle.rate(f)) for f in routing.flows()
    )
    return ConvergenceRow(
        instance=name,
        num_flows=len(routing),
        rounds=trace.rounds,
        converged=trace.converged,
        max_error=max_error,
        distinct_levels=len(set(round(r, 9) for r in oracle.rates().values())),
    )


#: Task descriptors for :func:`paper_instances` — primitive tuples so
#: they pickle; :func:`_paper_point` rebuilds each instance from its
#: descriptor deterministically.
_PAPER_TASKS: Tuple[Tuple[str, object], ...] = (
    ("example_2_3", "routing_a"),
    ("example_2_3", "routing_b"),
    ("example_2_3", "macro"),
    ("theorem_4_3", 3),
    ("theorem_4_3", 4),
    ("theorem_4_3", 5),
)


def _paper_point(task: Tuple[str, object]) -> ConvergenceRow:
    """One worked-construction measurement (module-level: picklable)."""
    kind, variant = task
    if kind == "example_2_3":
        instance = example_2_3()
        if variant == "macro":
            routing = Routing.for_macro_switch(instance.macro, instance.flows)
            capacities = instance.macro.graph.capacities()
        else:
            routing_a, routing_b = example_2_3_routings(instance)
            routing = routing_a if variant == "routing_a" else routing_b
            capacities = instance.clos.graph.capacities()
        return _measure(f"example_2_3/{variant}", routing, capacities)
    if kind == "theorem_4_3":
        inst = theorem_4_3(variant)
        return _measure(
            f"theorem_4_3(n={variant})",
            lemma_4_6_routing(inst),
            inst.clos.graph.capacities(),
        )
    raise ValueError(f"unknown paper-instance task {task!r}")


def paper_instances(jobs: int = 1) -> List[ConvergenceRow]:
    """E11 part 1: the paper's worked constructions."""
    return parallel_map(_paper_point, _PAPER_TASKS, jobs=jobs)


def _stochastic_point(task: Tuple[int, int, int]) -> ConvergenceRow:
    """One seeded ECMP workload measurement (picklable)."""
    n, num_flows, seed = task
    network = ClosNetwork(n)
    capacities = network.graph.capacities()
    flows = uniform_random(network, num_flows, seed=seed)
    routing = ecmp_routing(network, flows, seed=seed)
    return _measure(f"uniform/seed{seed}", routing, capacities)


def stochastic_instances(
    n: int = 3,
    num_flows: int = 30,
    seeds: Sequence[int] = range(4),
    jobs: int = 1,
) -> List[ConvergenceRow]:
    """E11 part 2: random workloads under ECMP routing."""
    tasks = [(n, num_flows, seed) for seed in seeds]
    return parallel_map(_stochastic_point, tasks, jobs=jobs)


class AimdRow(NamedTuple):
    """AIMD time-average vs the ideal share on a shared bottleneck."""

    num_flows: int
    ideal_share: float
    aimd_mean: float
    relative_gap: float


def aimd_gap(flow_counts: Sequence[int] = (2, 4, 8)) -> List[AimdRow]:
    """E11 part 3: how far TCP-shaped control sits from the idealization."""
    from repro.core.flows import FlowCollection

    rows: List[AimdRow] = []
    for count in flow_counts:
        network = ClosNetwork(max(1, (count + 1) // 2))
        flows = FlowCollection()
        members = flows.add_pair(
            network.sources[0], network.destinations[-1], count=count
        )
        routing = Routing.uniform(network, flows, 1)
        averages = AimdDynamics(routing, network.graph.capacities()).run(
            rounds=4000, warmup=1000
        )
        mean = sum(averages[f] for f in members) / count
        ideal = 1.0 / count
        rows.append(
            AimdRow(
                num_flows=count,
                ideal_share=ideal,
                aimd_mean=mean,
                relative_gap=abs(mean - ideal) / ideal,
            )
        )
    return rows
