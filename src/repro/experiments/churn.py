"""Experiment "churn" — streaming allocation under live flow churn.

The paper's premise is a rate controller that re-derives the max-min
allocation whenever the unsplittable-flow set changes (§2.2); at
data-center event rates that makes the *allocator* the bottleneck, which
is exactly the regime Shah & Xie's centralized congestion control
targets (PAPERS.md).  This harness measures how far the PR's streaming
stack moves that bottleneck, comparing three configurations on the same
Poisson churn sequence (:func:`repro.workloads.stochastic.
churn_workload`):

- ``per-event`` — the classic loop: one from-scratch vectorized solve
  per solver-visible event (:func:`repro.sim.flowsim.simulate`).
- ``streaming`` — same per-event cadence, but each solve patches only
  the affected suffix of water-fill rounds
  (``MaxMinCongestionControl(backend="streaming")``); results are
  byte-identical to ``per-event``.
- ``batched`` — the micro-batching loop on top of the streaming solver
  (:func:`repro.sim.stream.simulate_stream`, optionally pod-sharded via
  :func:`repro.sim.stream.simulate_sharded`): re-solve at most once per
  ``batch_window`` of simulated time.

Each row reports wall-clock seconds, arrival-event throughput
(events/sec of the *workload*, the tentpole's headline number), solver
consultations, and the streaming solver's patched/full split.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.topology import ClosNetwork
from repro.sim.flowsim import SimulationResult, simulate
from repro.sim.policies import MaxMinCongestionControl
from repro.sim.stream import simulate_sharded, simulate_stream
from repro.workloads.stochastic import churn_workload


class ChurnRow(NamedTuple):
    """One configuration's run over the same churn sequence."""

    config: str
    n: int
    jobs: int
    #: Flow events processed (arrivals + completions).
    flow_events: int
    wall_s: float
    #: flow_events / wall_s — the tentpole's headline metric.
    events_per_sec: float
    completed: int
    work_done: float
    #: Streaming-solver split, when the config uses it (else None).
    patched: Optional[int]
    fullsolve: Optional[int]


def churn_comparison(
    n: int = 8,
    rate: float = 200.0,
    horizon: float = 2.0,
    batch_window: float = 0.05,
    pods: int = 1,
    seed: int = 0,
    configs: Sequence[str] = ("per-event", "streaming", "batched"),
    engine: str = "auto",
    jobs: int = 1,
) -> List[ChurnRow]:
    """Run the churn workload under each configuration; one row each.

    ``per-event`` and ``streaming`` produce byte-identical
    :class:`~repro.sim.flowsim.SimulationResult`\\ s (asserted here);
    ``batched`` trades bounded rate staleness (≤ ``batch_window``) for
    throughput, and with ``pods > 1`` additionally shards the (then
    pod-local) workload into independent blocks.  ``engine`` selects
    the simulator event loop (see :func:`repro.sim.flowsim.simulate`)
    and ``jobs`` the worker-process count for the sharded config.
    """
    network = ClosNetwork(n)
    workload = churn_workload(
        network, rate=rate, horizon=horizon, pods=pods, seed=seed
    )
    rows: List[ChurnRow] = []
    baseline: Optional[SimulationResult] = None
    for config in configs:
        policy: Optional[MaxMinCongestionControl] = None
        t0 = time.perf_counter()
        if config == "per-event":
            policy = MaxMinCongestionControl(network, backend="vectorized")
            result = simulate(workload, policy, engine=engine)
        elif config == "streaming":
            policy = MaxMinCongestionControl(network, backend="streaming")
            result = simulate(workload, policy, engine=engine)
        elif config == "batched":
            if pods > 1:
                result = simulate_sharded(
                    network, workload, pods=pods,
                    batch_window=batch_window, seed=0, engine=engine,
                    jobs=jobs,
                )
            else:
                policy = MaxMinCongestionControl(
                    network, backend="streaming"
                )
                result = simulate_stream(
                    workload, policy, batch_window=batch_window,
                    engine=engine,
                )
        else:
            raise ValueError(f"unknown churn config {config!r}")
        wall_s = time.perf_counter() - t0

        if config in ("per-event", "streaming"):
            if baseline is None:
                baseline = result
            elif result != baseline:
                raise AssertionError(
                    f"{config} diverged from the per-event baseline"
                )
        flow_events = len(workload) + len(result.completed)
        stream = getattr(policy, "_stream", None)
        stats = stream.stats if stream is not None else None
        rows.append(
            ChurnRow(
                config=config,
                n=n,
                jobs=len(workload),
                flow_events=flow_events,
                wall_s=wall_s,
                events_per_sec=flow_events / wall_s if wall_s > 0 else 0.0,
                completed=len(result.completed),
                work_done=result.work_done,
                patched=stats["patched"] if stats else None,
                fullsolve=stats["fullsolve"] if stats else None,
            )
        )
    return rows


def churn_event_sequence(
    network: ClosNetwork,
    rate: float = 100000.0,
    horizon: float = 0.5,
    mean_size: float = 0.01,
    max_live: int = 2000,
    seed: int = 0,
) -> List[Tuple[str, object, Optional[Tuple]]]:
    """The pinned add/remove event stream a simulator would hand the
    allocator: Poisson arrivals with ECMP-hashed middle pins, departures
    interleaved (oldest-biased random) to cap the live-flow count at
    ``max_live``.  This isolates the *allocation service* — no
    discrete-event bookkeeping — so absorbing it measures pure solver
    event throughput (:func:`absorb_churn`)."""
    from repro.routers.ecmp import _flow_hash
    from repro.sim.policies import _job_flow

    jobs = churn_workload(
        network, rate=rate, horizon=horizon, mean_size=mean_size, seed=seed
    )
    rng = random.Random(seed)
    num_middles = network.num_middles
    events: List[Tuple[str, object, Optional[Tuple]]] = []
    live: List[object] = []
    for job in jobs:
        flow = _job_flow(job)
        middle = (_flow_hash(flow, seed) % num_middles) + 1
        events.append(
            ("add", flow, network.path_via(job.source, job.dest, middle))
        )
        live.append(flow)
        while len(live) > max_live:
            events.append(
                ("remove", live.pop(rng.randrange(len(live))), None)
            )
    return events


def absorb_churn(
    capacities,
    events: Sequence[Tuple[str, object, Optional[Tuple]]],
    batch: int = 4096,
    per_event: bool = False,
    limit: Optional[int] = None,
) -> Dict[str, object]:
    """Feed ``events`` into the allocator and return throughput stats.

    ``per_event=False`` (the streaming service): one
    :class:`~repro.core.streaming.StreamingMaxMin` absorbing ``batch``
    events per solve.  ``per_event=True`` (the classic loop the tentpole
    displaces): a from-scratch vectorized solve after *every* event —
    pass ``limit`` to run it on a prefix of the same sequence, since at
    data-center scale that loop is exactly what's too slow to finish.

    Returns ``{"events", "wall_s", "events_per_sec", "solves", "stats"}``
    (``stats`` is the streaming solver's lifetime split, else ``None``).
    """
    from repro.obs import counter

    if limit is not None:
        events = events[:limit]
    events_counter = counter("bench.churn.events")
    solves = 0
    stats = None
    start = time.perf_counter()
    if per_event:
        from repro.core.routing import Routing
        from repro.core.vectorized import max_min_fair_vectorized

        paths = {}
        for kind, flow, path in events:
            if kind == "add":
                paths[flow] = path
            else:
                del paths[flow]
            if paths:
                max_min_fair_vectorized(Routing(dict(paths)), capacities)
            solves += 1
    else:
        from repro.core.streaming import StreamingMaxMin

        solver = StreamingMaxMin(capacities)
        pending = 0
        for kind, flow, path in events:
            if kind == "add":
                solver.add(flow, path)
            else:
                solver.remove(flow)
            pending += 1
            if pending >= batch:
                solver.solve()
                solves += 1
                pending = 0
        if pending:
            solver.solve()
            solves += 1
        stats = solver.stats
    wall_s = time.perf_counter() - start
    events_counter.inc(len(events))
    return {
        "events": len(events),
        "wall_s": wall_s,
        "events_per_sec": len(events) / wall_s if wall_s > 0 else 0.0,
        "solves": solves,
        "stats": stats,
    }
