"""Experiment E2 — Figure 2 / Theorem 3.4 (R1): the price of fairness.

Sweeps the adversarial parameter ``k`` (number of parallel type-2 flows)
and reports, for each ``k``:

- ``T^MT`` — maximum throughput (matching), measured;
- ``T^MmF`` — max-min fair throughput (water-filling), measured;
- the ratio and the paper's closed-form prediction ``(1 + 1/(k+1))/2``;

and additionally validates the theorem's *universal* lower bound
``T^MmF ≥ T^MT / 2`` on random workloads, where the paper gives a proof
but no experiment.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence

from repro.core.objectives import macro_switch_max_min
from repro.core.theorems import theorem_3_4 as predict
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.workloads.adversarial import theorem_3_4
from repro.workloads.stochastic import hotspot, uniform_random


class PriceOfFairnessRow(NamedTuple):
    """One sweep point of E2."""

    k: int
    t_max_throughput: Fraction
    t_max_min: Fraction
    ratio: Fraction
    predicted_ratio: Fraction
    matches: bool


def sweep(ks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)) -> List[PriceOfFairnessRow]:
    """The adversarial sweep of Theorem 3.4's tight construction."""
    rows: List[PriceOfFairnessRow] = []
    for k in ks:
        instance = theorem_3_4(1, k)
        t_mt = Fraction(max_throughput_value(instance.flows))
        t_mmf = macro_switch_max_min(instance.macro, instance.flows).throughput()
        prediction = predict(k)
        rows.append(
            PriceOfFairnessRow(
                k=k,
                t_max_throughput=t_mt,
                t_max_min=t_mmf,
                ratio=t_mmf / t_mt,
                predicted_ratio=prediction.ratio,
                matches=(
                    t_mt == prediction.max_throughput
                    and t_mmf == prediction.max_min_throughput
                ),
            )
        )
    return rows


class RandomBoundRow(NamedTuple):
    """One random-workload validation of ``T^MmF ≥ T^MT / 2``."""

    workload: str
    seed: int
    t_max_throughput: Fraction
    t_max_min: Fraction
    bound_holds: bool


def random_bound_check(
    n: int = 3, num_flows: int = 40, seeds: Sequence[int] = range(5)
) -> List[RandomBoundRow]:
    """Validate Theorem 3.4's lower bound on stochastic macro-switch inputs."""
    clos = ClosNetwork(n)
    macro = MacroSwitch(n)
    rows: List[RandomBoundRow] = []
    for seed in seeds:
        for name, flows in (
            ("uniform", uniform_random(clos, num_flows, seed=seed)),
            ("hotspot", hotspot(clos, num_flows, seed=seed)),
        ):
            t_mt = Fraction(max_throughput_value(flows))
            t_mmf = macro_switch_max_min(macro, flows).throughput()
            rows.append(
                RandomBoundRow(
                    workload=name,
                    seed=seed,
                    t_max_throughput=t_mt,
                    t_max_min=t_mmf,
                    bound_holds=bool(2 * t_mmf >= t_mt),
                )
            )
    return rows
