"""Experiment E2 — Figure 2 / Theorem 3.4 (R1): the price of fairness.

Sweeps the adversarial parameter ``k`` (number of parallel type-2 flows)
and reports, for each ``k``:

- ``T^MT`` — maximum throughput (matching), measured;
- ``T^MmF`` — max-min fair throughput (water-filling), measured;
- the ratio and the paper's closed-form prediction ``(1 + 1/(k+1))/2``;

and additionally validates the theorem's *universal* lower bound
``T^MmF ≥ T^MT / 2`` on random workloads, where the paper gives a proof
but no experiment.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence, Tuple

from repro.core.objectives import macro_switch_max_min
from repro.core.theorems import theorem_3_4 as predict
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.parallel import parallel_map
from repro.workloads.adversarial import theorem_3_4
from repro.workloads.stochastic import hotspot, uniform_random


class PriceOfFairnessRow(NamedTuple):
    """One sweep point of E2."""

    k: int
    t_max_throughput: Fraction
    t_max_min: Fraction
    ratio: Fraction
    predicted_ratio: Fraction
    matches: bool


def _sweep_point(k: int) -> PriceOfFairnessRow:
    """One k of the Theorem 3.4 sweep (module-level: picklable)."""
    instance = theorem_3_4(1, k)
    t_mt = Fraction(max_throughput_value(instance.flows))
    t_mmf = macro_switch_max_min(instance.macro, instance.flows).throughput()
    prediction = predict(k)
    return PriceOfFairnessRow(
        k=k,
        t_max_throughput=t_mt,
        t_max_min=t_mmf,
        ratio=t_mmf / t_mt,
        predicted_ratio=prediction.ratio,
        matches=(
            t_mt == prediction.max_throughput
            and t_mmf == prediction.max_min_throughput
        ),
    )


def sweep(
    ks: Sequence[int] = (1, 2, 4, 8, 16, 32, 64), jobs: int = 1
) -> List[PriceOfFairnessRow]:
    """The adversarial sweep of Theorem 3.4's tight construction.

    ``jobs > 1`` computes sweep points in worker processes (identical
    results in identical order, and under ``REPRO_OBS=1`` worker
    telemetry is merged back; see :mod:`repro.parallel`).
    """
    return parallel_map(_sweep_point, ks, jobs=jobs)


class RandomBoundRow(NamedTuple):
    """One random-workload validation of ``T^MmF ≥ T^MT / 2``."""

    workload: str
    seed: int
    t_max_throughput: Fraction
    t_max_min: Fraction
    bound_holds: bool


def _random_bound_point(task: Tuple[int, int, str, int]) -> RandomBoundRow:
    """One (workload, seed) check (module-level: picklable)."""
    n, num_flows, name, seed = task
    clos = ClosNetwork(n)
    macro = MacroSwitch(n)
    generator = uniform_random if name == "uniform" else hotspot
    flows = generator(clos, num_flows, seed=seed)
    t_mt = Fraction(max_throughput_value(flows))
    t_mmf = macro_switch_max_min(macro, flows).throughput()
    return RandomBoundRow(
        workload=name,
        seed=seed,
        t_max_throughput=t_mt,
        t_max_min=t_mmf,
        bound_holds=bool(2 * t_mmf >= t_mt),
    )


def random_bound_check(
    n: int = 3,
    num_flows: int = 40,
    seeds: Sequence[int] = range(5),
    jobs: int = 1,
) -> List[RandomBoundRow]:
    """Validate Theorem 3.4's lower bound on stochastic macro-switch inputs."""
    tasks = [
        (n, num_flows, name, seed)
        for seed in seeds
        for name in ("uniform", "hotspot")
    ]
    return parallel_map(_random_bound_point, tasks, jobs=jobs)
