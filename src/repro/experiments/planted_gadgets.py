"""Experiment E13 — do the adversarial pathologies survive background traffic?

The constructions behind Theorems 3.4 and 4.3 are surgically isolated;
this experiment embeds them in random background traffic on otherwise
untouched ToR switches and measures whether the predicted pathologies
persist:

- **Planted Theorem 4.3** (`planted_starvation`): under practical
  routers (ECMP / greedy), how far below its macro rate does the
  gadget's type-3 flow fall with background present?  Background flows
  share only *interior* links with the gadget, so any extra degradation
  is pure macro-abstraction leakage.
- **Planted Figure 2** (`planted_price_of_fairness`): the gadget's
  contribution to throughput loss is unchanged by background — the
  price of fairness composes additively across disjoint server sets in
  the macro-switch.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence

from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.throughput import max_throughput_value
from repro.routers.ecmp import ecmp_routing
from repro.routers.greedy import greedy_least_congested
from repro.workloads.planted import planted_figure_2, planted_theorem_4_3


class PlantedStarvationRow(NamedTuple):
    """Type-3 flow's fate under one router, with/without background."""

    router: str
    num_background: int
    macro_rate: Fraction  # always 1
    network_rate: Fraction
    ratio: Fraction


def planted_starvation(
    n: int = 3,
    background_levels: Sequence[int] = (0, 10, 30),
    seed: int = 0,
) -> List[PlantedStarvationRow]:
    """The Theorem 4.3 type-3 flow under ECMP/greedy with background."""
    rows: List[PlantedStarvationRow] = []
    for num_background in background_levels:
        instance = planted_theorem_4_3(
            n, num_background=num_background, seed=seed
        )
        macro = macro_switch_max_min(instance.macro, instance.flows)
        (type3,) = instance.gadget.types["type3"]
        for router_name, routing in (
            ("ecmp", ecmp_routing(instance.clos, instance.flows, seed=seed)),
            ("greedy", greedy_least_congested(instance.clos, instance.flows)),
        ):
            alloc = max_min_fair(routing, instance.clos.graph.capacities())
            rows.append(
                PlantedStarvationRow(
                    router=router_name,
                    num_background=num_background,
                    macro_rate=macro.rate(type3),
                    network_rate=alloc.rate(type3),
                    ratio=alloc.rate(type3) / macro.rate(type3),
                )
            )
    return rows


class PlantedPofRow(NamedTuple):
    """Price of fairness with the gadget planted in background traffic."""

    num_background: int
    t_max_min: Fraction
    t_max_throughput: int
    ratio: Fraction
    gadget_rate_each: Fraction  # max-min rate of the gadget's flows


def planted_price_of_fairness(
    n: int = 3,
    k: int = 8,
    background_levels: Sequence[int] = (0, 10, 30),
    seed: int = 0,
) -> List[PlantedPofRow]:
    """R1's gadget contribution with background present.

    The gadget's flows keep their ``1/(k+1)`` rates exactly (they share
    no server links with background), so the *per-gadget* throughput
    deficit is invariant; the global ratio dilutes toward 1 as
    background grows — worst cases are local.
    """
    rows: List[PlantedPofRow] = []
    for num_background in background_levels:
        instance = planted_figure_2(
            n, k=k, num_background=num_background, seed=seed
        )
        macro = macro_switch_max_min(instance.macro, instance.flows)
        t_mt = max_throughput_value(instance.flows)
        gadget_flow = instance.gadget.types["type2"][0]
        rows.append(
            PlantedPofRow(
                num_background=num_background,
                t_max_min=macro.throughput(),
                t_max_throughput=t_mt,
                ratio=macro.throughput() / t_mt,
                gadget_rate_each=macro.rate(gadget_flow),
            )
        )
    return rows
