"""Experiment E8 — the §7 R1 discussion: scheduling vs congestion control.

The paper's conclusions argue that because max-min fairness forfeits up
to half the instantaneous throughput (R1), data-centers measured on
*flow completion times* may benefit from **scheduling**: delaying some
flows so the rest transmit at link capacity, analogously to admission
control.  This experiment quantifies that claim with the flow-level
simulator:

- policy "maxmin"    — ECMP routing + max-min fair congestion control;
- policy "scheduler" — maximum-matching service at link capacity with
  an SRPT preference (the §7 proposal);
- policy "ps"        — per-destination processor sharing (baseline).

Two workloads: the incast burst (where fairness provably doubles the
mean FCT versus serial service) and Poisson arrivals at moderate load.
Expected shape: the scheduler's mean FCT beats max-min congestion
control, most dramatically on incast; max-min in turn dominates the
naive baseline.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence

from repro.core.topology import ClosNetwork
from repro.sim.flowsim import FCTStats, fct_stats, simulate
from repro.sim.jobs import incast_burst, poisson_workload
from repro.sim.policies import (
    MatchingScheduler,
    MaxMinCongestionControl,
    ProcessorSharing,
    ReroutingCongestionControl,
)


class FCTRow(NamedTuple):
    """One (workload, policy) cell."""

    workload: str
    policy: str
    stats: FCTStats


def _policies(network: ClosNetwork):
    return {
        "maxmin": MaxMinCongestionControl(network, router="ecmp"),
        "scheduler": MatchingScheduler(network, srpt=True),
        "ps": ProcessorSharing(network),
    }


def incast_comparison(n: int = 2, fan_in: int = 8) -> List[FCTRow]:
    """The incast burst: fairness serves everyone at 1/fan_in; scheduling
    serves them one at a time.

    Closed forms for ``fan_in`` unit jobs on one destination link:
    max-min finishes all at time ``fan_in`` (mean FCT = fan_in);
    serial service finishes the i-th at time i (mean = (fan_in+1)/2) —
    asymptotically a 2× mean-FCT gap, the FCT face of Theorem 3.4.
    """
    network = ClosNetwork(n)
    rows: List[FCTRow] = []
    for name, policy in _policies(network).items():
        jobs = incast_burst(network, fan_in=fan_in, seed=3)
        result = simulate(jobs, policy)
        rows.append(FCTRow("incast", name, fct_stats(result)))
    return rows


def poisson_comparison(
    n: int = 2,
    rate: float = 1.0,
    horizon: float = 60.0,
    size_distribution: str = "exponential",
    seed: int = 0,
) -> List[FCTRow]:
    """Poisson arrivals at moderate load, all three policies."""
    network = ClosNetwork(n)
    rows: List[FCTRow] = []
    for name, policy in _policies(network).items():
        jobs = poisson_workload(
            network,
            rate=rate,
            horizon=horizon,
            size_distribution=size_distribution,
            seed=seed,
        )
        result = simulate(jobs, policy, max_time=horizon * 20)
        rows.append(FCTRow(f"poisson/{size_distribution}", name, fct_stats(result)))
    return rows


class LoadSweepRow(NamedTuple):
    """Mean FCT under both §7 policies at one offered load."""

    rate: float
    maxmin_mean_fct: float
    scheduler_mean_fct: float
    speedup: float  # maxmin / scheduler (> 1 means scheduling wins)


def load_sweep(
    n: int = 2,
    rates: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    horizon: float = 40.0,
    seed: int = 0,
) -> List[LoadSweepRow]:
    """Mean-FCT comparison across offered loads (the E8 headline series)."""
    network = ClosNetwork(n)
    rows: List[LoadSweepRow] = []
    for rate in rates:
        jobs = poisson_workload(network, rate=rate, horizon=horizon, seed=seed)
        results: Dict[str, float] = {}
        for name, policy in (
            ("maxmin", MaxMinCongestionControl(network, router="ecmp")),
            ("scheduler", MatchingScheduler(network, srpt=True)),
        ):
            stats = fct_stats(simulate(jobs, policy, max_time=horizon * 50))
            results[name] = stats.mean_fct
        rows.append(
            LoadSweepRow(
                rate=rate,
                maxmin_mean_fct=results["maxmin"],
                scheduler_mean_fct=results["scheduler"],
                speedup=results["maxmin"] / results["scheduler"],
            )
        )
    return rows


class ReroutingRow(NamedTuple):
    """Mean FCT of flow pinning vs periodic global re-routing."""

    interval: float  # re-route period (inf = never, i.e. pinned ECMP)
    mean_fct: float
    mean_slowdown: float


def rerouting_comparison(
    n: int = 3,
    rate: float = 4.0,
    horizon: float = 25.0,
    intervals: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    seed: int = 0,
) -> List[ReroutingRow]:
    """E8d: the Hedera question — does periodic re-routing of live flows
    reduce completion times over arrival-time pinning?

    Expected shape: re-routing helps (the greedy pass undoes unlucky
    ECMP collisions), and helps more at shorter intervals; the marginal
    benefit flattens once the interval is short relative to mean flow
    duration.
    """
    network = ClosNetwork(n)
    jobs = poisson_workload(network, rate=rate, horizon=horizon, seed=seed)
    rows: List[ReroutingRow] = []

    pinned = fct_stats(
        simulate(jobs, MaxMinCongestionControl(network, router="ecmp"))
    )
    rows.append(
        ReroutingRow(
            interval=float("inf"),
            mean_fct=pinned.mean_fct,
            mean_slowdown=pinned.mean_slowdown,
        )
    )
    for interval in intervals:
        stats = fct_stats(
            simulate(jobs, ReroutingCongestionControl(network, interval=interval))
        )
        rows.append(
            ReroutingRow(
                interval=interval,
                mean_fct=stats.mean_fct,
                mean_slowdown=stats.mean_slowdown,
            )
        )
    return rows
