"""Experiment E10 — how many middle switches repair Theorem 4.2?

Theorem 4.2 says the Figure 3 macro-switch rates are unroutable in
``C_n`` (m = n middle switches).  The multirate-rearrangeability
literature (§6 related work) guarantees some ``m ≤ ⌈20n/9⌉`` suffices
and conjectures ``2n − 1``.  This experiment measures the exact minimum
``m`` for the paper's own adversarial instance and for random
macro-switch allocations, and scores the first-fit heuristics against
the certified optimum.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.core.objectives import macro_switch_max_min
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.rearrange.minimize import (
    conjectured_worst_case,
    known_upper_bound,
    minimum_middles_exact,
    minimum_middles_heuristic,
)
from repro.workloads.adversarial import theorem_4_2
from repro.workloads.stochastic import uniform_random


class RearrangeRow(NamedTuple):
    """Minimum middle counts for one instance."""

    instance: str
    n: int
    num_flows: int
    exact_m: Optional[int]  # certified minimum (None if search skipped)
    heuristic_m: int  # first-fit family upper bound
    conjecture_m: int  # 2n - 1
    proven_m: int  # ceil(20n/9)
    within_conjecture: bool


def theorem_4_2_repair(sizes: Sequence[int] = (3,)) -> List[RearrangeRow]:
    """E10 part 1: minimum m for the Theorem 4.2 macro rates."""
    rows: List[RearrangeRow] = []
    for n in sizes:
        instance = theorem_4_2(n)
        demands = macro_switch_max_min(instance.macro, instance.flows).rates()
        exact = minimum_middles_exact(n, instance.flows, demands)
        heuristic = minimum_middles_heuristic(n, instance.flows, demands)
        rows.append(
            RearrangeRow(
                instance=f"theorem_4_2(n={n})",
                n=n,
                num_flows=len(instance.flows),
                exact_m=exact.num_middles,
                heuristic_m=heuristic.num_middles,
                conjecture_m=conjectured_worst_case(n),
                proven_m=known_upper_bound(n),
                within_conjecture=exact.num_middles <= conjectured_worst_case(n),
            )
        )
    return rows


def random_allocation_repair(
    n: int = 3, num_flows: int = 15, seeds: Sequence[int] = range(4)
) -> List[RearrangeRow]:
    """E10 part 2: minimum m for random macro-switch max-min allocations."""
    clos = ClosNetwork(n)
    macro = MacroSwitch(n)
    rows: List[RearrangeRow] = []
    for seed in seeds:
        flows = uniform_random(clos, num_flows, seed=seed)
        demands = macro_switch_max_min(macro, flows).rates()
        exact = minimum_middles_exact(n, flows, demands)
        heuristic = minimum_middles_heuristic(n, flows, demands)
        rows.append(
            RearrangeRow(
                instance=f"uniform/seed{seed}",
                n=n,
                num_flows=num_flows,
                exact_m=exact.num_middles,
                heuristic_m=heuristic.num_middles,
                conjecture_m=conjectured_worst_case(n),
                proven_m=known_upper_bound(n),
                within_conjecture=exact.num_middles
                <= conjectured_worst_case(n),
            )
        )
    return rows
