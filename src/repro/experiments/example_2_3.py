"""Experiment E1 — Figure 1 / Example 2.3: routing sensitivity in ``C_2``.

Regenerates the three sorted rate vectors the example derives (the
macro-switch allocation and the two contrasted Clos routings), verifies
their lexicographic ordering, and — going beyond the paper's by-hand
analysis — computes the *exact* lex-max-min and throughput-max-min
optima of the instance by exhaustive search.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.core.allocation import Allocation, lex_compare
from repro.core.maxmin import max_min_fair
from repro.core.objectives import (
    lex_max_min_fair,
    macro_switch_max_min,
    throughput_max_min_fair,
)
from repro.core.theorems import example_2_3_sorted_vectors
from repro.workloads.adversarial import example_2_3, example_2_3_routings


class Example23Result(NamedTuple):
    """Everything Example 2.3 derives, measured."""

    macro_vector: List
    routing_a_vector: List
    routing_b_vector: List
    lex_optimum_vector: List  # exhaustive lex-max-min over all routings
    t_mmf_optimum: object  # exhaustive throughput-max-min optimum
    orderings_hold: bool  # macro ≥ A ≥ B in lex order, as derived
    matches_paper: bool  # all three vectors equal the paper's


def run() -> Example23Result:
    """Run E1 and return measured-vs-paper outcomes."""
    instance = example_2_3()
    capacities = instance.clos.graph.capacities()

    macro = macro_switch_max_min(instance.macro, instance.flows)
    routing_a, routing_b = example_2_3_routings(instance)
    alloc_a = max_min_fair(routing_a, capacities)
    alloc_b = max_min_fair(routing_b, capacities)

    lex_opt = lex_max_min_fair(instance.clos, instance.flows)
    t_opt = throughput_max_min_fair(instance.clos, instance.flows)

    macro_vec = macro.sorted_vector()
    a_vec = alloc_a.sorted_vector()
    b_vec = alloc_b.sorted_vector()

    expected = example_2_3_sorted_vectors()
    matches = (
        macro_vec == expected["macro_switch"]
        and a_vec == expected["routing_a"]
        and b_vec == expected["routing_b"]
    )
    orderings = (
        lex_compare(macro_vec, a_vec) > 0 and lex_compare(a_vec, b_vec) > 0
    )

    return Example23Result(
        macro_vector=macro_vec,
        routing_a_vector=a_vec,
        routing_b_vector=b_vec,
        lex_optimum_vector=lex_opt.allocation.sorted_vector(),
        t_mmf_optimum=t_opt.allocation.throughput(),
        orderings_hold=orderings,
        matches_paper=matches,
    )
