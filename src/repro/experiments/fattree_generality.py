"""Experiment E12 — the paper's phenomena beyond ``C_n``: k-ary fat-trees.

§7 restates R1 "for every interconnection network connecting sources to
destinations (not necessarily a Clos network)".  This experiment checks
the paper's three phenomena on the deployed fat-tree fabric:

1. **R1 generality** — on the fat-tree's macro abstraction (host access
   links only), ``T^MmF ≥ T^MT / 2`` for random workloads, and the
   Figure 2 gadget embedded on fat-tree hosts drives the ratio toward
   1/2 exactly as in ``MS_n``.
2. **R2 leakage** — under single-path ECMP routing inside the real
   fat-tree, flows transfer bottlenecks onto interior (edge–agg,
   agg–core) links, and some flows fall below their macro rates; we
   measure how many and how far.
3. **Idealization check** — the distributed fair-share dynamics
   converge to the water-filling allocation on the fat-tree too (the
   machinery is topology-independent).
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.core.allocation import Allocation
from repro.core.bottleneck import bottleneck_links, certify_max_min_fair
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.dynamics.waterlevel import LinkFairShareDynamics
from repro.matching.hopcroft_karp import maximum_matching
from repro.graph.bipartite import BipartiteMultigraph
from repro.topologies.fattree import (
    FatTree,
    Host,
    ecmp_fat_tree_routing,
    host_macro_graph,
)

FlowKey = Tuple[Host, Host, int]


def _random_flows(tree: FatTree, num_flows: int, seed: int) -> List[FlowKey]:
    rng = random.Random(seed)
    flows: List[FlowKey] = []
    for tag in range(num_flows):
        src = rng.choice(tree.hosts)
        dst = rng.choice([h for h in tree.hosts if h != src])
        flows.append((src, dst, tag))
    return flows


def _macro_allocation(
    tree: FatTree, flows: Sequence[FlowKey]
) -> Tuple[Allocation, Routing]:
    graph, macro_path = host_macro_graph(tree)
    routing = Routing({flow: macro_path(flow[0], flow[1]) for flow in flows})
    return max_min_fair(routing, graph.capacities()), routing


def _max_throughput(flows: Sequence[FlowKey]) -> int:
    graph = BipartiteMultigraph()
    for src, dst, tag in flows:
        graph.add_edge(("src", src), ("dst", dst), key=(src, dst, tag))
    return len(maximum_matching(graph))


class R1Row(NamedTuple):
    """R1's bound on the fat-tree macro abstraction."""

    workload: str
    k: int
    num_flows: int
    t_max_min: object
    t_max_throughput: int
    bound_holds: bool


def r1_on_fat_tree(
    k: int = 4, num_flows: int = 30, seeds: Sequence[int] = range(3)
) -> List[R1Row]:
    """E12 part 1: T^MmF >= T^MT / 2 on fat-tree host populations."""
    tree = FatTree(k)
    rows: List[R1Row] = []
    for seed in seeds:
        flows = _random_flows(tree, num_flows, seed)
        macro, _ = _macro_allocation(tree, flows)
        t_mt = _max_throughput(flows)
        rows.append(
            R1Row(
                workload=f"uniform/seed{seed}",
                k=k,
                num_flows=num_flows,
                t_max_min=macro.throughput(),
                t_max_throughput=t_mt,
                bound_holds=bool(2 * macro.throughput() >= t_mt),
            )
        )

    # The Figure 2 gadget on two fat-tree hosts: 2 "good" flows + k
    # parasites sharing both endpoints — the ratio drops toward 1/2.
    gadget_k = 8
    h_a, h_b, h_c, h_d = tree.hosts[0], tree.hosts[1], tree.hosts[2], tree.hosts[3]
    gadget: List[FlowKey] = [(h_a, h_c, 0), (h_b, h_d, 1)]
    gadget += [(h_b, h_c, 2 + i) for i in range(gadget_k)]
    macro, _ = _macro_allocation(tree, gadget)
    t_mt = _max_throughput(gadget)
    rows.append(
        R1Row(
            workload=f"figure2_gadget(k={gadget_k})",
            k=k,
            num_flows=len(gadget),
            t_max_min=macro.throughput(),
            t_max_throughput=t_mt,
            bound_holds=bool(2 * macro.throughput() >= t_mt),
        )
    )
    return rows


class R2Row(NamedTuple):
    """Macro-abstraction leakage under ECMP inside the fat-tree."""

    seed: int
    num_flows: int
    num_below_macro: int  # flows under their macro rate
    min_ratio: float  # worst flow's network/macro ratio
    interior_bottlenecked: int  # flows whose bottlenecks are all interior
    certified: bool  # water-filling output certified max-min


def r2_leakage_on_fat_tree(
    k: int = 4, num_flows: int = 40, seeds: Sequence[int] = range(3)
) -> List[R2Row]:
    """E12 part 2: single-path ECMP vs the fat-tree macro abstraction."""
    tree = FatTree(k)
    rows: List[R2Row] = []
    for seed in seeds:
        flows = _random_flows(tree, num_flows, seed)
        macro, _ = _macro_allocation(tree, flows)
        paths = ecmp_fat_tree_routing(tree, flows, seed=seed)
        routing = Routing(paths)
        capacities = tree.graph.capacities()
        alloc = max_min_fair(routing, capacities)

        below = 0
        min_ratio = 1.0
        interior = 0
        for flow in flows:
            ratio = float(alloc.rate(flow) / macro.rate(flow))
            if ratio < 1 - 1e-12:
                below += 1
            min_ratio = min(min_ratio, ratio)
            links = bottleneck_links(routing, alloc, capacities, flow)
            if links and all(
                not isinstance(u, Host) and not isinstance(v, Host)
                for u, v in links
            ):
                interior += 1
        rows.append(
            R2Row(
                seed=seed,
                num_flows=num_flows,
                num_below_macro=below,
                min_ratio=min_ratio,
                interior_bottlenecked=interior,
                certified=certify_max_min_fair(routing, alloc, capacities)
                is None,
            )
        )
    return rows


class ConvergenceRow(NamedTuple):
    seed: int
    rounds: int
    converged: bool
    max_error: float


def dynamics_on_fat_tree(
    k: int = 4, num_flows: int = 30, seeds: Sequence[int] = range(3)
) -> List[ConvergenceRow]:
    """E12 part 3: fair-share dynamics on the fat-tree (topology-free)."""
    tree = FatTree(k)
    rows: List[ConvergenceRow] = []
    for seed in seeds:
        flows = _random_flows(tree, num_flows, seed)
        routing = Routing(ecmp_fat_tree_routing(tree, flows, seed=seed))
        capacities = tree.graph.capacities()
        oracle = max_min_fair(routing, capacities, exact=False)
        trace = LinkFairShareDynamics(routing, capacities).run(max_rounds=300)
        max_error = max(
            abs(trace.rates[f] - oracle.rate(f)) for f in flows
        )
        rows.append(
            ConvergenceRow(
                seed=seed,
                rounds=trace.rounds,
                converged=trace.converged,
                max_error=max_error,
            )
        )
    return rows
