"""Experiment E6 — the §6 simulation study: routers vs the macro-switch.

The paper's §6 summarizes the extended version's evaluation: on
*stochastic inputs*, algorithms that "first calculate the macro-switch
rates, and then borrow these rates to assign flows based on path
congestion, can approximate well the macro-switch rates", while on
*worst-case inputs* some flows' rates fall arbitrarily below their
macro-switch rates.  This harness reproduces both halves:

- :func:`stochastic_comparison` runs ECMP, greedy least-congested, and
  congestion local search over several workload families and reports
  how each router's max-min fair allocation compares against the
  macro-switch allocation (min/mean rate ratio, throughput fraction,
  lexicographic gap).
- :func:`adversarial_comparison` runs the same routers on the Theorem
  4.3 construction, where even the *optimal* routing starves a flow by
  ``1/n`` — stochastic success does not contradict the impossibility.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, NamedTuple, Sequence, Tuple

from repro.analysis.metrics import compare_to_macro, summarize_rates
from repro.core.allocation import Allocation, lex_compare
from repro.core.flows import FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.routers.congestion_local_search import local_search_congestion
from repro.routers.ecmp import ecmp_routing
from repro.routers.greedy import greedy_least_congested, macro_switch_demands
from repro.routers.two_choice import two_choice_routing
from repro.workloads.adversarial import theorem_4_3
from repro.workloads.stochastic import hotspot, permutation, rack_local, uniform_random


class RouterComparisonRow(NamedTuple):
    """One (workload, router) cell of the E6 table."""

    workload: str
    router: str
    seed: int
    num_flows: int
    throughput_fraction: Fraction  # router throughput / macro throughput
    min_rate_ratio: Fraction  # worst flow vs its macro rate
    mean_rate_ratio: float
    lex_at_most_macro: bool  # router's sorted vector ≤ macro's (must hold)


def _routers(
    network: ClosNetwork, flows: FlowCollection, seed: int
) -> Dict[str, Routing]:
    demands = macro_switch_demands(network, flows)
    greedy = greedy_least_congested(network, flows, demands=demands)
    return {
        "ecmp": ecmp_routing(network, flows, seed=seed),
        "two_choice": two_choice_routing(network, flows, demands=demands, seed=seed),
        "greedy": greedy,
        "local_search": local_search_congestion(
            network, flows, initial=greedy, demands=demands
        ),
    }


def _score(
    name: str,
    router: str,
    seed: int,
    macro_alloc: Allocation,
    routing: Routing,
    alloc: Allocation,
    lex_tol: float,
) -> RouterComparisonRow:
    """Score a solved allocation against the macro-switch allocation."""
    comparison = compare_to_macro(alloc, macro_alloc)
    mean_ratio = sum(float(v) for v in comparison.ratios.values()) / len(
        comparison.ratios
    )
    return RouterComparisonRow(
        workload=name,
        router=router,
        seed=seed,
        num_flows=len(routing),
        throughput_fraction=alloc.throughput() / macro_alloc.throughput(),
        min_rate_ratio=comparison.min_ratio,
        mean_rate_ratio=mean_ratio,
        lex_at_most_macro=(
            lex_compare(
                alloc.sorted_vector(), macro_alloc.sorted_vector(), tol=lex_tol
            )
            <= 0
        ),
    )


def _compare(
    name: str,
    router: str,
    seed: int,
    network: ClosNetwork,
    macro_alloc: Allocation,
    routing: Routing,
    backend: str = None,
) -> RouterComparisonRow:
    """Solve the routing's allocation and score it against the macro.

    ``backend`` optionally selects a solver from
    :data:`repro.core.solve.BACKENDS`.  Float backends (``heap``,
    ``vectorized``) compare against the exact macro allocation with a
    1e-9 lexicographic tolerance; exact backends compare exactly.
    """
    if backend is not None:
        from repro.core.solve import solve_max_min, EXACT_BACKENDS

        alloc = solve_max_min(
            routing, network.graph.capacities(), backend=backend
        )
        lex_tol = 0.0 if backend in EXACT_BACKENDS else 1e-9
    else:
        alloc = max_min_fair(routing, network.graph.capacities())
        lex_tol = 0.0
    return _score(name, router, seed, macro_alloc, routing, alloc, lex_tol)


def _batch_compare(
    cells: List[Tuple[str, str, int, Routing]],
    capacities,
    macro_allocs: Dict[Tuple[str, int], Allocation],
    jobs: int = 1,
) -> List[RouterComparisonRow]:
    """Solve every (workload, router) cell's allocation in one batch.

    All candidate routings share the same Clos capacities, so the whole
    comparison table becomes one block-diagonal float batch — one
    solver invocation instead of |workloads|·|routers| — scored against
    the exact macro allocations with the float backends' 1e-9
    lexicographic tolerance.
    """
    from repro.core.batched import solve_max_min_batch

    allocations = solve_max_min_batch(
        [(routing, capacities) for _, _, _, routing in cells], jobs=jobs
    )
    return [
        _score(
            name, router, seed, macro_allocs[(name, seed)], routing, alloc,
            lex_tol=1e-9,
        )
        for (name, router, seed, routing), alloc in zip(cells, allocations)
    ]


def stochastic_comparison(
    n: int = 3,
    num_flows: int = 30,
    seeds: Sequence[int] = range(3),
    backend: str = None,
    jobs: int = 1,
) -> List[RouterComparisonRow]:
    """E6, stochastic half: three routers across three workload families.

    ``backend="vectorized"`` (or ``"heap"``) solves the per-router
    allocations in floats, the right trade for large ``num_flows``; the
    macro-switch reference allocation stays exact either way.
    ``backend="batched"`` solves *all* (workload, router, seed) cells'
    allocations in one block-diagonal float batch — one solver
    invocation for the whole table (``jobs > 1`` splits it over shared
    memory).
    """
    network = ClosNetwork(n)
    macro_network = MacroSwitch(n)
    rows: List[RouterComparisonRow] = []
    cells: List[Tuple[str, str, int, Routing]] = []
    macro_allocs: Dict[Tuple[str, int], Allocation] = {}
    for seed in seeds:
        workloads: Dict[str, FlowCollection] = {
            "uniform": uniform_random(network, num_flows, seed=seed),
            "permutation": permutation(network, seed=seed),
            "hotspot": hotspot(network, num_flows, seed=seed),
        }
        for name, flows in workloads.items():
            macro_alloc = macro_switch_max_min(macro_network, flows)
            if backend == "batched":
                macro_allocs[(name, seed)] = macro_alloc
                for router, routing in _routers(network, flows, seed).items():
                    cells.append((name, router, seed, routing))
                continue
            for router, routing in _routers(network, flows, seed).items():
                rows.append(
                    _compare(
                        name, router, seed, network, macro_alloc, routing,
                        backend=backend,
                    )
                )
    if backend == "batched":
        return _batch_compare(
            cells, network.graph.capacities(), macro_allocs, jobs=jobs
        )
    return rows


def adversarial_comparison(
    n: int = 3, backend: str = None
) -> List[RouterComparisonRow]:
    """E6, worst-case half: the same routers on the Theorem 4.3 flows."""
    instance = theorem_4_3(n)
    macro_alloc = macro_switch_max_min(instance.macro, instance.flows)
    routers = _routers(instance.clos, instance.flows, seed=0)
    if backend == "batched":
        cells = [
            ("theorem_4_3", router, 0, routing)
            for router, routing in routers.items()
        ]
        return _batch_compare(
            cells,
            instance.clos.graph.capacities(),
            {("theorem_4_3", 0): macro_alloc},
        )
    rows: List[RouterComparisonRow] = []
    for router, routing in routers.items():
        rows.append(
            _compare(
                "theorem_4_3", router, 0, instance.clos, macro_alloc, routing,
                backend=backend,
            )
        )
    return rows


def allocation_summaries(
    n: int = 3, num_flows: int = 30, seed: int = 0, backend: str = None
) -> Dict[str, Dict[str, float]]:
    """Scalar summaries (throughput/min/median/max/Jain) per router, one workload."""
    network = ClosNetwork(n)
    macro_network = MacroSwitch(n)
    flows = uniform_random(network, num_flows, seed=seed)
    result: Dict[str, Dict[str, float]] = {
        "macro_switch": summarize_rates(
            macro_switch_max_min(macro_network, flows)
        )
    }
    for router, routing in _routers(network, flows, seed).items():
        if backend is not None:
            from repro.core.solve import solve_max_min

            alloc = solve_max_min(
                routing, network.graph.capacities(), backend=backend
            )
        else:
            alloc = max_min_fair(routing, network.graph.capacities())
        result[router] = summarize_rates(alloc)
    return result


class LocalitySweepRow(NamedTuple):
    """Router quality as traffic locality varies."""

    locality: float
    router: str
    throughput_fraction: Fraction
    min_rate_ratio: Fraction
    interior_bound_fraction: float  # flows bottlenecked only inside


def locality_sweep(
    n: int = 3,
    num_flows: int = 30,
    localities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
) -> List[LocalitySweepRow]:
    """E6c: rack locality vs macro-abstraction fidelity.

    In the paper's three-stage model a "rack-local" flow (input and
    output ToR share an index) still crosses a middle switch, so —
    unlike in a folded fabric — locality does **not** relieve the
    interior; it *concentrates* traffic onto a single (I_i, O_i) switch
    pair whose n interior paths must then be shared precisely.
    Measured shape: demand-aware greedy stays at the macro-switch
    allocation across the whole sweep, while ECMP degrades *more* as
    locality rises (hash collisions on the concentrated pair), with the
    fraction of interior-bottlenecked flows growing alongside.
    """
    from repro.core.bottleneck import bottleneck_links
    from repro.core.nodes import Source, Destination

    network = ClosNetwork(n)
    macro_network = MacroSwitch(n)
    rows: List[LocalitySweepRow] = []
    for locality in localities:
        flows = rack_local(network, num_flows, locality=locality, seed=seed)
        macro_alloc = macro_switch_max_min(macro_network, flows)
        for router, routing in _routers(network, flows, seed).items():
            if router == "local_search":
                continue  # greedy is representative; keep the sweep fast
            alloc = max_min_fair(routing, network.graph.capacities())
            comparison = compare_to_macro(alloc, macro_alloc)
            capacities = network.graph.capacities()
            interior = 0
            for flow in flows:
                links = bottleneck_links(routing, alloc, capacities, flow)
                if links and all(
                    not isinstance(u, (Source,)) and not isinstance(v, (Destination,))
                    for u, v in links
                ):
                    interior += 1
            rows.append(
                LocalitySweepRow(
                    locality=locality,
                    router=router,
                    throughput_fraction=alloc.throughput()
                    / macro_alloc.throughput(),
                    min_rate_ratio=comparison.min_ratio,
                    interior_bound_fraction=interior / len(flows),
                )
            )
    return rows
