"""Ablation experiments A1 and A2 — design choices the paper leaves implicit.

**A1 (Doom-Switch line 3).**  Algorithm 1 dumps the unmatched flows on
the middle switch with the *smallest* color class.  How much does that
choice matter?  We compare three dump policies on the Figure 4
construction: ``least`` (the paper's), ``most`` (adversarially bad: the
doomed flows collide with the largest set of matched flows), and
``round_robin`` (spread the doomed flows — which reads as fairer but
dilutes the throughput gain by disturbing *every* middle switch).

**A2 (search strategy).**  How close does cheap hill-climbing get to
the exhaustive lex-max-min and throughput-max-min optima, and how much
does middle-switch symmetry pruning shrink the exhaustive search?  Run
on small random instances where the exact optimum is computable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence, Tuple

from repro.core.allocation import lex_compare
from repro.core.doom_switch import doom_switch
from repro.core.maxmin import max_min_fair
from repro.core.objectives import (
    lex_max_min_fair,
    macro_switch_max_min,
    throughput_max_min_fair,
)
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.routers.ecmp import ecmp_routing
from repro.search.annealing import anneal, multi_start
from repro.search.enumeration import routing_space_size
from repro.search.local_search import improve_routing
from repro.workloads.adversarial import theorem_5_4
from repro.workloads.stochastic import uniform_random


class DumpPolicyRow(NamedTuple):
    """A1: one (n, k, policy) cell."""

    n: int
    k: int
    policy: str
    throughput: Fraction
    gain_vs_macro: Fraction
    min_rate: Fraction


def dump_policy_ablation(
    points: Sequence[Tuple[int, int]] = ((7, 1), (9, 2), (11, 4)),
    policies: Sequence[str] = ("least", "most", "round_robin"),
) -> List[DumpPolicyRow]:
    """A1: Doom-Switch line-3 policy comparison on the Figure 4 gadget."""
    rows: List[DumpPolicyRow] = []
    for n, k in points:
        instance = theorem_5_4(n, k)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        for policy in policies:
            result = doom_switch(instance.clos, instance.flows, dump_policy=policy)
            throughput = result.allocation.throughput()
            rows.append(
                DumpPolicyRow(
                    n=n,
                    k=k,
                    policy=policy,
                    throughput=throughput,
                    gain_vs_macro=throughput / macro.throughput(),
                    min_rate=min(result.allocation.sorted_vector()),
                )
            )
    return rows


class SearchAblationRow(NamedTuple):
    """A2: one random instance."""

    seed: int
    num_flows: int
    space_full: int  # n^|F|
    space_reduced: int  # symmetry-orbit representatives
    lex_local_matches_exact: bool  # hill-climb reaches the lex optimum
    throughput_local: Fraction
    throughput_exact: Fraction
    local_gap: Fraction  # exact − local throughput (≥ 0)


def search_ablation(
    n: int = 2, num_flows: int = 5, seeds: Sequence[int] = range(4)
) -> List[SearchAblationRow]:
    """A2: local search vs exhaustive optima on small random instances."""
    network = ClosNetwork(n)
    rows: List[SearchAblationRow] = []
    for seed in seeds:
        flows = uniform_random(network, num_flows, seed=seed)
        exact_lex = lex_max_min_fair(network, flows)
        exact_thr = throughput_max_min_fair(network, flows)

        start = ecmp_routing(network, flows, seed=seed)
        _, local_lex = improve_routing(network, start, objective="lex")
        _, local_thr = improve_routing(network, start, objective="throughput")

        rows.append(
            SearchAblationRow(
                seed=seed,
                num_flows=num_flows,
                space_full=routing_space_size(num_flows, n, use_symmetry=False),
                space_reduced=routing_space_size(num_flows, n, use_symmetry=True),
                lex_local_matches_exact=(
                    lex_compare(
                        local_lex.sorted_vector(),
                        exact_lex.allocation.sorted_vector(),
                    )
                    == 0
                ),
                throughput_local=local_thr.throughput(),
                throughput_exact=exact_thr.allocation.throughput(),
                local_gap=exact_thr.allocation.throughput()
                - local_thr.throughput(),
            )
        )
    return rows


class GlobalSearchRow(NamedTuple):
    """A3: escape strategies vs the exact lex optimum on one instance."""

    seed: int
    hill_matches: bool  # single-start hill climb reaches the optimum
    multi_start_matches: bool
    anneal_matches: bool


def global_search_ablation(
    n: int = 2, num_flows: int = 5, seeds: Sequence[int] = range(5)
) -> List[GlobalSearchRow]:
    """A3: do restarts / annealing close hill climbing's optimality gap?

    Expected shape: multi-start and annealing match the exhaustive lex
    optimum at least as often as a single hill climb (they subsume it).
    """
    network = ClosNetwork(n)
    rows: List[GlobalSearchRow] = []
    for seed in seeds:
        flows = uniform_random(network, num_flows, seed=seed)
        exact = lex_max_min_fair(network, flows)
        optimum = exact.allocation.sorted_vector()

        start = ecmp_routing(network, flows, seed=seed)
        _, hill = improve_routing(network, start, objective="lex")
        _, multi = multi_start(
            network, flows, objective="lex", starts=4, seed=seed
        )
        _, annealed = anneal(
            network, flows, objective="lex", steps=100, seed=seed
        )
        rows.append(
            GlobalSearchRow(
                seed=seed,
                hill_matches=lex_compare(hill.sorted_vector(), optimum) == 0,
                multi_start_matches=lex_compare(
                    multi.sorted_vector(), optimum
                )
                == 0,
                anneal_matches=lex_compare(
                    annealed.sorted_vector(), optimum
                )
                == 0,
            )
        )
    return rows
