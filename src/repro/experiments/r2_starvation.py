"""Experiments E3/E4 — Figure 3 / Theorems 4.2 and 4.3 (R2).

**E3 (Theorem 4.2, infeasibility).**  For the multiplicity-1 Figure 3
construction, offer every flow at its macro-switch max-min rate and
prove by exhaustive (pruned) search that *no* routing is feasible —
while the splittable LP relaxation is feasible, isolating
unsplittability as the cause.

**E4 (Theorem 4.3, starvation).**  For the multiplicity-``n+1``
construction, verify the paper's proof structure computationally:

1. the macro-switch rates match Lemma 4.4 exactly;
2. the Lemma 4.6 routing's max-min allocation matches the posited
   lex-max-min rates, certified via the bottleneck property;
3. Claim 4.5's integer analysis: ``x/(n+1) + y/n = 1`` has only the
   integer solutions ``(0, n)`` and ``(n+1, 0)``;
4. the posited optimum is a local optimum of lex-max-min hill-climbing
   (a necessary condition for global optimality the paper proves).

The headline series is the starvation factor ``1/n`` as the network
grows.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence, Tuple

import functools

from repro.core.bottleneck import certify_max_min_fair
from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.theorems import theorem_4_3 as predict
from repro.lp.feasibility import find_feasible_routing, splittable_feasible
from repro.parallel import parallel_map
from repro.search.local_search import is_local_optimum
from repro.workloads.adversarial import (
    lemma_4_6_routing,
    theorem_4_2,
    theorem_4_3,
)


class InfeasibilityRow(NamedTuple):
    """E3 at one network size."""

    n: int
    num_flows: int
    unsplittable_feasible: bool  # False = Theorem 4.2 confirmed
    splittable_feasible: bool  # True = classic demand satisfaction holds


def _infeasibility_point(n: int) -> InfeasibilityRow:
    """One network size of E3 (module-level: picklable)."""
    instance = theorem_4_2(n)
    demands = macro_switch_max_min(instance.macro, instance.flows).rates()
    routing = find_feasible_routing(instance.clos, instance.flows, demands)
    return InfeasibilityRow(
        n=n,
        num_flows=len(instance.flows),
        unsplittable_feasible=routing is not None,
        splittable_feasible=splittable_feasible(
            instance.clos, instance.flows, demands
        ),
    )


def infeasibility_sweep(
    sizes: Sequence[int] = (3,), jobs: int = 1
) -> List[InfeasibilityRow]:
    """E3: macro-switch max-min rates cannot be routed unsplittably.

    The exhaustive search is exponential; ``n = 3`` decides in
    milliseconds and ``n = 4`` in seconds — pass ``sizes=(3, 4)`` for the
    slower confirmation.  ``jobs > 1`` decides sizes in parallel.
    """
    return parallel_map(_infeasibility_point, sizes, jobs=jobs)


class StarvationRow(NamedTuple):
    """E4 at one network size."""

    n: int
    macro_type3_rate: Fraction
    lex_type3_rate: Fraction
    starvation_factor: Fraction
    predicted_factor: Fraction
    bottleneck_certified: bool  # Lemma 4.6 Step 1 (max-min fair for routing)
    locally_optimal: bool  # necessary condition for Lemma 4.6 Step 2
    per_type_rates_match: bool  # Lemmas 4.4 and 4.6 rate tables


def _starvation_point(
    n: int,
    check_local_optimality: bool = True,
    backend: str = None,
    certify: bool = True,
) -> StarvationRow:
    """One network size of E4 (module-level: picklable via ``partial``).

    ``backend`` optionally selects an exact solver from
    :data:`repro.core.solve.BACKENDS` — ``"quotient"`` exploits the
    construction's symmetry and extends the sweep to n ≥ 64.
    ``certify=False`` skips the bottleneck certification (the
    certificate is O(F·P) but still costs minutes at the largest sizes;
    the row then reports ``bottleneck_certified=True`` vacuously).
    """
    instance = theorem_4_3(n)
    prediction = predict(n)
    capacities = instance.clos.graph.capacities()

    macro = macro_switch_max_min(instance.macro, instance.flows, backend=backend)
    routing = lemma_4_6_routing(instance)
    if backend is not None:
        from repro.core.solve import solve_max_min

        alloc = solve_max_min(routing, capacities, backend=backend)
    else:
        alloc = max_min_fair(routing, capacities)

    rates_match = True
    for type_name in ("type1", "type2", "type3"):
        for flow in instance.types[type_name]:
            if macro.rate(flow) != prediction.macro_rates[type_name]:
                rates_match = False
            if alloc.rate(flow) != prediction.lex_max_min_rates[type_name]:
                rates_match = False

    certified = (
        certify_max_min_fair(routing, alloc, capacities) is None
        if certify
        else True
    )
    locally_optimal = (
        is_local_optimum(instance.clos, routing, objective="lex")
        if check_local_optimality
        else True
    )

    (type3,) = instance.types["type3"]
    return StarvationRow(
        n=n,
        macro_type3_rate=macro.rate(type3),
        lex_type3_rate=alloc.rate(type3),
        starvation_factor=alloc.rate(type3) / macro.rate(type3),
        predicted_factor=prediction.starvation_factor,
        bottleneck_certified=certified,
        locally_optimal=locally_optimal,
        per_type_rates_match=rates_match,
    )


def _rate_close(measured, predicted) -> bool:
    """Exact equality for exact rates; 1e-9-relative for float rates."""
    if isinstance(measured, Fraction):
        return measured == predicted
    reference = float(predicted)
    return abs(measured - reference) <= 1e-9 * (1.0 + abs(reference))


def _starvation_rows_batched(
    sizes: Sequence[int],
    check_local_optimality: bool,
    certify: bool,
    jobs: int,
) -> List[StarvationRow]:
    """E4 with every size's two solves stacked into one batched water-fill.

    All macro-switch and Lemma 4.6 allocations across the sweep become
    one block-diagonal batch (2·|sizes| scenarios), solved in floats by
    :func:`repro.core.batched.solve_max_min_batch`; rate-table and
    prediction checks compare with a 1e-9 relative tolerance instead of
    the exact path's ``==``, and certification uses the same tolerance.
    """
    from repro.core.batched import solve_max_min_batch
    from repro.core.routing import Routing

    instances = [theorem_4_3(n) for n in sizes]
    pairs = []
    for instance in instances:
        macro_routing = Routing.for_macro_switch(
            instance.macro, instance.flows
        )
        pairs.append((macro_routing, instance.macro.graph.capacities()))
        pairs.append(
            (lemma_4_6_routing(instance), instance.clos.graph.capacities())
        )
    allocations = solve_max_min_batch(pairs, jobs=jobs)

    rows: List[StarvationRow] = []
    for index, (n, instance) in enumerate(zip(sizes, instances)):
        prediction = predict(n)
        macro = allocations[2 * index]
        alloc = allocations[2 * index + 1]
        routing = pairs[2 * index + 1][0]
        capacities = pairs[2 * index + 1][1]

        rates_match = True
        for type_name in ("type1", "type2", "type3"):
            for flow in instance.types[type_name]:
                if not _rate_close(
                    macro.rate(flow), prediction.macro_rates[type_name]
                ):
                    rates_match = False
                if not _rate_close(
                    alloc.rate(flow), prediction.lex_max_min_rates[type_name]
                ):
                    rates_match = False

        certified = (
            certify_max_min_fair(routing, alloc, capacities, tol=1e-9) is None
            if certify
            else True
        )
        locally_optimal = (
            is_local_optimum(instance.clos, routing, objective="lex")
            if check_local_optimality
            else True
        )
        (type3,) = instance.types["type3"]
        rows.append(
            StarvationRow(
                n=n,
                macro_type3_rate=macro.rate(type3),
                lex_type3_rate=alloc.rate(type3),
                starvation_factor=alloc.rate(type3) / macro.rate(type3),
                predicted_factor=prediction.starvation_factor,
                bottleneck_certified=certified,
                locally_optimal=locally_optimal,
                per_type_rates_match=rates_match,
            )
        )
    return rows


def starvation_sweep(
    sizes: Sequence[int] = (3, 4, 5, 6),
    check_local_optimality: bool = True,
    jobs: int = 1,
    backend: str = None,
    certify: bool = True,
) -> List[StarvationRow]:
    """E4: the ``1/n`` starvation of the type-3 flow, per network size.

    Pass ``backend="quotient"`` (typically with
    ``check_local_optimality=False``) to run the exact sweep at n ≥ 64
    via symmetry reduction, or ``backend="batched"`` to stack every
    size's solves into one block-diagonal float batch (fastest for wide
    sweeps of moderate sizes; rate checks then use a 1e-9 relative
    tolerance — see :func:`_starvation_rows_batched`).  ``jobs > 1``
    computes sizes in worker processes (for ``"batched"``: splits the
    batch over shared memory); with ``REPRO_OBS=1`` the workers' solver
    counters and spans are shipped back and merged, so traced parallel
    sweeps report the same totals as sequential ones (see
    :mod:`repro.obs.pipeline`).
    """
    if backend == "batched":
        return _starvation_rows_batched(
            sizes, check_local_optimality, certify, jobs
        )
    point = functools.partial(
        _starvation_point,
        check_local_optimality=check_local_optimality,
        backend=backend,
        certify=certify,
    )
    return parallel_map(point, sizes, jobs=jobs)


class DominanceRow(NamedTuple):
    """Sampled verification of Lemma 4.6 Step 2 at one network size."""

    n: int
    samples: int
    dominated: int  # sampled routings lex-dominated by the posited optimum
    ties: int  # sampled routings achieving the same sorted vector


def random_routing_dominance(
    n: int = 3, samples: int = 200, seed: int = 0
) -> DominanceRow:
    """Lemma 4.6 Step 2, statistically: no sampled routing lex-beats ``a*``.

    The full claim quantifies over all ``n^|F|`` routings (the paper
    proves it; we certify local optimality separately).  Here we sample
    uniformly random routings and check each one's max-min sorted vector
    against the posited optimum — a cheap, high-volume falsification
    attempt that complements the structural checks.
    """
    import random as _random

    from repro.core.allocation import lex_compare

    instance = theorem_4_3(n)
    capacities = instance.clos.graph.capacities()
    optimum = max_min_fair(lemma_4_6_routing(instance), capacities)
    optimum_vector = optimum.sorted_vector()

    rng = _random.Random(seed)
    dominated = ties = 0
    from repro.core.routing import Routing

    for _ in range(samples):
        middles = {flow: rng.randint(1, n) for flow in instance.flows}
        routing = Routing.from_middles(instance.clos, instance.flows, middles)
        vector = max_min_fair(routing, capacities).sorted_vector()
        comparison = lex_compare(optimum_vector, vector)
        if comparison > 0:
            dominated += 1
        elif comparison == 0:
            ties += 1
        else:
            raise AssertionError(
                f"sampled routing lex-beats the posited optimum: {middles}"
            )
    return DominanceRow(n=n, samples=samples, dominated=dominated, ties=ties)


class Claim45Verification(NamedTuple):
    """Exhaustive verification of Claim 4.5 at one network size."""

    n: int
    num_routings: int  # feasible routings, modulo symmetry
    condition_1_holds: bool  # (x, y) ∈ {(n+1, 0), (0, n)} per (I_i, M_m)
    condition_2_holds: bool  # n−1 type-2.b flows per middle switch
    exhausted: bool  # False if the enumeration cap was hit


def claim_4_5_all_routings(
    n: int = 3, limit: int = 100_000
) -> Claim45Verification:
    """Claim 4.5 verified over *every* feasible routing (not a witness).

    Enumerates all routings that carry the type-1/type-2 flows at their
    macro-switch rates — modulo middle-switch relabeling and the
    interchange of interior-equivalent flows, both of which preserve the
    claim's switch-level counting conditions — and checks conditions (1)
    and (2) on each.  At ``n = 3`` exactly one canonical routing exists.
    """
    from fractions import Fraction as _F

    from repro.core.flows import FlowCollection
    from repro.lp.feasibility import iter_feasible_routings

    instance = theorem_4_3(n)
    sub = FlowCollection(
        f
        for key in ("type1", "type2a", "type2b")
        for f in instance.types[key]
    )
    demands = {}
    for f in instance.types["type1"]:
        demands[f] = _F(1, n + 1)
    for f in instance.types["type2a"] + instance.types["type2b"]:
        demands[f] = _F(1, n)

    count = 0
    cond1 = cond2 = True
    for routing in iter_feasible_routings(
        instance.clos, sub, demands, limit=limit
    ):
        count += 1
        middles = routing.middles(instance.clos)
        cells: dict = {}
        for f in instance.types["type1"]:
            x, y = cells.get((f.source.switch, middles[f]), (0, 0))
            cells[(f.source.switch, middles[f])] = (x + 1, y)
        for key in ("type2a", "type2b"):
            for f in instance.types[key]:
                x, y = cells.get((f.source.switch, middles[f]), (0, 0))
                cells[(f.source.switch, middles[f])] = (x, y + 1)
        if any(
            (x, y) not in {(n + 1, 0), (0, n)} for (x, y) in cells.values()
        ):
            cond1 = False
        per_middle = {m: 0 for m in range(1, n + 1)}
        for f in instance.types["type2b"]:
            per_middle[middles[f]] += 1
        if set(per_middle.values()) != {n - 1}:
            cond2 = False

    return Claim45Verification(
        n=n,
        num_routings=count,
        condition_1_holds=cond1,
        condition_2_holds=cond2,
        exhausted=count < limit,
    )


def claim_4_5_integer_solutions(n: int) -> List[Tuple[int, int]]:
    """All integer solutions of Claim 4.5's link equation for size ``n``.

    ``x/(n+1) + y/n = 1`` with ``x ∈ [0, n+1]``, ``y ∈ [0, n]``; the
    claim (via lcm(n, n+1) = n(n+1)) is that only ``(0, n)`` and
    ``(n+1, 0)`` qualify.
    """
    solutions: List[Tuple[int, int]] = []
    for x in range(n + 2):
        for y in range(n + 1):
            if Fraction(x, n + 1) + Fraction(y, n) == 1:
                solutions.append((x, y))
    return solutions
