"""Experiment E14 — graceful degradation under middle-stage failures.

The paper's results localize the Clos network's fairness pathologies on
the interior links; this experiment measures what happens when that
interior *shrinks*.  For a fixed workload on ``C_n`` we fail middle
switches one by one and report, per failure level:

- throughput and worst-flow rate when flows are **rerouted** around the
  failure (greedy router on the surviving fabric) — graceful
  degradation until demand exceeds the surviving bisection;
- the same when flows stay **pinned** to their pre-failure paths
  (capacity zeroed under them) — flows through the dead switch starve
  outright, quantifying the reroute-vs-pin gap.

Expected shape: rerouted throughput decays roughly linearly with
surviving middle switches once they bind; pinned throughput falls off a
cliff proportional to the failed switch's load, and its min rate is 0.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Sequence

from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.failures import fail_middle_switch, surviving_network
from repro.routers.greedy import greedy_least_congested
from repro.workloads.stochastic import uniform_random


class FailureRow(NamedTuple):
    """One failure level."""

    failed_middles: int
    surviving: int
    pinned_throughput: Fraction
    pinned_min_rate: Fraction
    rerouted_throughput: Fraction
    rerouted_min_rate: Fraction


def middle_failure_sweep(
    n: int = 4,
    num_flows: int = 40,
    max_failures: int = 3,
    seed: int = 0,
) -> List[FailureRow]:
    """Fail middle switches ``1..max_failures`` cumulatively."""
    if max_failures >= n:
        raise ValueError("must leave at least one middle switch alive")
    network = ClosNetwork(n)
    flows = uniform_random(network, num_flows, seed=seed)
    base_capacities = network.graph.capacities()
    base_routing = greedy_least_congested(network, flows)

    rows: List[FailureRow] = []
    capacities = dict(base_capacities)
    for failures in range(0, max_failures + 1):
        if failures:
            capacities = fail_middle_switch(network, capacities, failures)

        pinned = max_min_fair(base_routing, capacities)

        failed = list(range(1, failures + 1))
        if failed:
            smaller, index_map = surviving_network(network, failed)
            rerouted_small = greedy_least_congested(smaller, flows)
            translated = {
                flow: index_map[m]
                for flow, m in rerouted_small.middles(smaller).items()
            }
            rerouted_routing = Routing.from_middles(network, flows, translated)
        else:
            rerouted_routing = base_routing
        rerouted = max_min_fair(rerouted_routing, capacities)

        rows.append(
            FailureRow(
                failed_middles=failures,
                surviving=n - failures,
                pinned_throughput=pinned.throughput(),
                pinned_min_rate=min(pinned.sorted_vector()),
                rerouted_throughput=rerouted.throughput(),
                rerouted_min_rate=min(rerouted.sorted_vector()),
            )
        )
    return rows
