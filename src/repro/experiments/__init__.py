"""One module per paper artifact; see DESIGN.md §4 for the experiment index.

- E1  ``example_2_3``        — Figure 1 / Example 2.3
- E2  ``r1_price_of_fairness`` — Figure 2 / Theorem 3.4 (R1)
- E3  ``r2_starvation.infeasibility_sweep`` — Figure 3 / Theorem 4.2
- E4  ``r2_starvation.starvation_sweep``    — Figure 3 / Theorem 4.3 (R2)
- E5  ``r3_doom_switch``     — Figure 4 / Theorem 5.4 (R3)
- E6  ``ecmp_simulation``    — §6 extended-version simulation study
- E7  ``konig_equivalence``  — Lemma 5.2
- E8  ``fct_scheduling``     — §7 R1 discussion: scheduling vs congestion control
- E9  ``relative_fairness``  — §7 R2 discussion: relative-max-min fairness
- E10 ``rearrangeability``   — §6 related work: sizing the middle stage
- E11 ``convergence``        — §2.2's congestion-control idealization, mechanized
- E12 ``fattree_generality`` — §7's "every interconnection network" on fat-trees
- E13 ``planted_gadgets``    — adversarial gadgets inside background traffic
- E14 ``failure_degradation``— middle-switch failure injection
- E15 ``oversubscription``   — breaking the full-bisection premise
- E16 ``splittable_equivalence`` — §1's premise: splitting restores MS_n
- A1/A2/A3 ``ablations``     — Doom-Switch dump policy; search strategies
"""

from repro.experiments import (
    ablations,
    convergence,
    ecmp_simulation,
    example_2_3,
    failure_degradation,
    fattree_generality,
    fct_scheduling,
    konig_equivalence,
    oversubscription,
    planted_gadgets,
    r1_price_of_fairness,
    r2_starvation,
    r3_doom_switch,
    rearrangeability,
    relative_fairness,
    splittable_equivalence,
)

__all__ = [
    "ablations",
    "convergence",
    "ecmp_simulation",
    "example_2_3",
    "failure_degradation",
    "fattree_generality",
    "fct_scheduling",
    "konig_equivalence",
    "oversubscription",
    "planted_gadgets",
    "r1_price_of_fairness",
    "r2_starvation",
    "r3_doom_switch",
    "rearrangeability",
    "relative_fairness",
    "splittable_equivalence",
]
