"""repro — a reproduction of *Impossibility Results for Data-Center Routing
with Congestion Control and Unsplittable Flows* (PODC 2024).

The library models Clos networks and their macro-switch abstractions,
computes max-min fair allocations under arbitrary routings, implements
the paper's Doom-Switch algorithm, and regenerates every worked example
and theorem bound computationally.  See ``README.md`` for a tour and
``DESIGN.md`` for the system inventory.

Quickstart::

    from repro import ClosNetwork, FlowCollection, Flow, Routing, max_min_fair

    clos = ClosNetwork(2)
    flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(2, 1))])
    routing = Routing.from_middles(clos, flows, {flows[0]: 1})
    alloc = max_min_fair(routing, clos.graph.capacities())
    print(alloc.sorted_vector())
"""

from repro.errors import (
    CapacityValidationError,
    DisconnectedFlowError,
    ExperimentError,
    InfeasibleRoutingError,
    ReproError,
    StepFailedError,
    StepTimeoutError,
    UnknownFlowError,
    UnknownLinkError,
)
from repro.core import (
    Allocation,
    ClosNetwork,
    Destination,
    DoomSwitchResult,
    Flow,
    FlowCollection,
    InputSwitch,
    MacroSwitch,
    MiddleSwitch,
    OptimalAllocation,
    OutputSwitch,
    Routing,
    Source,
    UnboundedRateError,
    doom_switch,
    is_feasible,
    is_max_min_fair,
    lex_compare,
    lex_max_min_fair,
    macro_switch_max_min,
    max_min_fair,
    max_throughput_allocation,
    max_throughput_value,
    throughput_max_min_fair,
    throughput_max_throughput,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "CapacityValidationError",
    "ClosNetwork",
    "Destination",
    "DisconnectedFlowError",
    "DoomSwitchResult",
    "ExperimentError",
    "Flow",
    "FlowCollection",
    "InfeasibleRoutingError",
    "InputSwitch",
    "MacroSwitch",
    "MiddleSwitch",
    "OptimalAllocation",
    "OutputSwitch",
    "ReproError",
    "Routing",
    "Source",
    "StepFailedError",
    "StepTimeoutError",
    "UnboundedRateError",
    "UnknownFlowError",
    "UnknownLinkError",
    "__version__",
    "doom_switch",
    "is_feasible",
    "is_max_min_fair",
    "lex_compare",
    "lex_max_min_fair",
    "macro_switch_max_min",
    "max_min_fair",
    "max_throughput_allocation",
    "max_throughput_value",
    "throughput_max_min_fair",
    "throughput_max_throughput",
]
