"""The resilient experiment runner: timeouts, retries, checkpoint/resume.

Experiment sweeps fail the way fabrics do — mid-flight.  A hung solver
should not wedge a batch, one crashing experiment should not abort the
other fifteen, and a SIGKILLed sweep should resume where it stopped
rather than recompute hours of exact arithmetic.  This module provides
that machinery for every experiment (E1–E16 and the ablations):

- :func:`run_step` — one callable under a wall-clock ``timeout`` and a
  deterministic retry loop with exponential backoff (all experiments
  are seeded, so a retry after a transient failure — OOM kill, flaky
  subprocess, interrupted syscall — recomputes the *same* answer).
- :class:`RunManifest` — the structured record of a sweep: git SHA,
  seed, params, and per-step status/attempts/duration/error, JSON-
  checkpointed atomically after every step via :mod:`repro.io`.
- :class:`ResilientRunner` — drives named steps against a manifest,
  capturing each step's stdout into the manifest so a resumed sweep
  replays finished steps byte-for-byte instead of recomputing them.

The CLI front end lives in :mod:`repro.cli`::

    python -m repro run all --manifest sweep.json        # checkpointed
    python -m repro run all --resume sweep.json          # finish it
    python -m repro run e5 --timeout 60 --retries 2      # one experiment
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager, redirect_stdout
from dataclasses import dataclass
from io import StringIO
from typing import Any, Callable, Dict, List, Mapping, Optional, TextIO

from repro import obs
from repro.errors import (
    CertificateError,
    ExperimentError,
    StepFailedError,
    StepTimeoutError,
)
from repro.io.serialize import read_json, write_json_atomic

MANIFEST_FORMAT = "repro-run-manifest"
MANIFEST_VERSION = 1

#: Step lifecycle states recorded in the manifest.
PENDING = "pending"
RUNNING = "running"
OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"


def format_bytes(size: int) -> str:
    """Human-readable byte count (``12.3 KiB``-style, binary units)."""
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def git_sha() -> str:
    """The repository HEAD, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


@contextmanager
def wall_clock_limit(seconds: Optional[float], step: str):
    """Raise :class:`~repro.errors.StepTimeoutError` after ``seconds``.

    Uses ``SIGALRM`` (POSIX, main thread only); elsewhere the limit is
    not enforceable and the context is a no-op — the runner still
    records durations, it just cannot interrupt a hung step.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_alarm(signum, frame):
        raise StepTimeoutError(step, seconds)

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def run_step(
    name: str,
    fn: Callable[[], Any],
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
) -> "StepOutcome":
    """Run ``fn`` under a wall-clock budget with deterministic retries.

    A timeout is terminal (the step is deterministic — running it again
    under the same budget would time out again), and so is a
    :class:`~repro.errors.CertificateError`: a certificate rejects the
    step's *answer*, not its execution, and the same seeded computation
    would produce the same rejected answer on every retry.  Certificate
    failures are wrapped immediately in
    :class:`~repro.errors.StepFailedError` so a ``keep_going`` sweep
    records them and moves on.  Any other exception is retried up to
    ``retries`` times with exponential backoff (``backoff * 2**attempt``
    seconds).  Exhausted retries raise
    :class:`~repro.errors.StepFailedError` wrapping the last cause.
    """
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    started = time.monotonic()
    last_error: Optional[BaseException] = None
    for attempt in range(1, retries + 2):
        try:
            with wall_clock_limit(timeout, name):
                value = fn()
            return StepOutcome(
                name=name,
                value=value,
                attempts=attempt,
                duration=time.monotonic() - started,
            )
        except StepTimeoutError:
            raise
        except CertificateError as error:
            raise StepFailedError(name, attempt, error) from error
        except Exception as error:  # deliberate: retry any step failure
            last_error = error
            if attempt <= retries:
                sleep(backoff * (2 ** (attempt - 1)))
    raise StepFailedError(name, retries + 1, last_error)


@dataclass
class StepOutcome:
    """What :func:`run_step` hands back for a successful step."""

    name: str
    value: Any
    attempts: int
    duration: float


@dataclass
class StepRecord:
    """One step's lifecycle inside a manifest."""

    name: str
    status: str = PENDING
    attempts: int = 0
    duration: float = 0.0
    error: Optional[str] = None
    #: The exception class behind ``error`` (e.g. ``"CertificateError"``),
    #: so sweep post-mortems can filter certificate rejections from
    #: timeouts and crashes without parsing message text.
    error_type: Optional[str] = None
    #: Captured stdout of the completed step (replayed on resume).
    output: Optional[str] = None
    #: Span tree of the step (only when ``repro.obs`` was enabled).
    trace: Optional[Dict[str, Any]] = None
    #: Metric activity attributed to the step (only when obs enabled).
    metrics: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        document = {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "duration": round(self.duration, 6),
            "error": self.error,
            "output": self.output,
        }
        # Optional fields appear only when set, so manifests written by
        # clean runs (or with REPRO_OBS off) stay byte-identical to
        # pre-feature ones.
        if self.error_type is not None:
            document["error_type"] = self.error_type
        if self.trace is not None:
            document["trace"] = self.trace
        if self.metrics is not None:
            document["metrics"] = self.metrics
        return document

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StepRecord":
        return cls(
            name=str(data["name"]),
            status=str(data.get("status", PENDING)),
            attempts=int(data.get("attempts", 0)),
            duration=float(data.get("duration", 0.0)),
            error=data.get("error"),
            error_type=data.get("error_type"),
            output=data.get("output"),
            trace=data.get("trace"),
            metrics=data.get("metrics"),
        )

    def peak_memory_bytes(self) -> Optional[int]:
        """Peak traced memory of the step, if a memory span recorded it."""
        if self.trace is None:
            return None
        return self.trace.get("mem_peak_bytes")

    def span_wall_seconds(self) -> Optional[float]:
        """Wall time of the step's root span, if one was recorded."""
        if self.trace is None:
            return None
        return self.trace.get("duration_s")


class RunManifest:
    """The structured, checkpointable record of one experiment sweep.

    Holds run provenance (git SHA, seed, params, creation time) plus a
    :class:`StepRecord` per step, in execution order.  ``save`` writes
    atomically, so the file on disk is always a valid resume point.
    """

    def __init__(
        self,
        path: str,
        experiments: Optional[List[str]] = None,
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        sha: Optional[str] = None,
        created: Optional[float] = None,
    ) -> None:
        self.path = path
        self.experiments = list(experiments or [])
        self.params = dict(params or {})
        self.seed = seed
        self.sha = sha if sha is not None else git_sha()
        self.created = created if created is not None else time.time()
        self.steps: Dict[str, StepRecord] = {}

    def step(self, name: str) -> StepRecord:
        """The record for ``name``, created pending on first access."""
        if name not in self.steps:
            self.steps[name] = StepRecord(name=name)
        return self.steps[name]

    def completed(self, name: str) -> bool:
        record = self.steps.get(name)
        return record is not None and record.status == OK

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "experiments": self.experiments,
            "params": self.params,
            "seed": self.seed,
            "git_sha": self.sha,
            "created": self.created,
            "steps": [record.to_dict() for record in self.steps.values()],
        }

    def save(self) -> str:
        return write_json_atomic(self.path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        document = read_json(path)
        if document.get("format") != MANIFEST_FORMAT:
            raise ExperimentError(
                f"{path} is not a {MANIFEST_FORMAT} document "
                f"(format={document.get('format')!r})"
            )
        if document.get("version") != MANIFEST_VERSION:
            raise ExperimentError(
                f"unsupported manifest version: {document.get('version')!r}"
            )
        manifest = cls(
            path=path,
            experiments=document.get("experiments", []),
            params=document.get("params", {}),
            seed=document.get("seed"),
            sha=document.get("git_sha", "unknown"),
            created=document.get("created"),
        )
        for entry in document.get("steps", []):
            record = StepRecord.from_dict(entry)
            # A step caught mid-run by a crash has no trustworthy output;
            # resume recomputes it.
            if record.status == RUNNING:
                record.status = PENDING
            manifest.steps[record.name] = record
        return manifest


class ResilientRunner:
    """Drive named steps against a manifest with replay-on-resume.

    Each step's stdout is captured, echoed to ``stream``, and stored in
    the manifest; the manifest is checkpointed after every step.  On a
    resumed run, steps already ``ok`` replay their stored output
    byte-for-byte — same text, same exact rationals — without
    recomputing.
    """

    def __init__(
        self,
        manifest: Optional[RunManifest] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.5,
        keep_going: bool = True,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.manifest = manifest
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.keep_going = keep_going
        self.stream = stream if stream is not None else sys.stdout
        self.records: List[StepRecord] = []

    def _checkpoint(self) -> None:
        if self.manifest is not None:
            self.manifest.save()

    def run(self, steps: Mapping[str, Callable[[], Any]]) -> List[StepRecord]:
        """Run ``steps`` in order; returns their records.

        With ``keep_going`` (the default) a failing step is recorded and
        the sweep continues; otherwise the first failure stops the run.
        Timeouts obey the same switch.
        """
        self.records = []
        for name, fn in steps.items():
            record = (
                self.manifest.step(name)
                if self.manifest is not None
                else StepRecord(name=name)
            )
            self.records.append(record)

            if self.manifest is not None and self.manifest.completed(name):
                # Resume: replay the stored output instead of recomputing.
                self.stream.write(record.output or "")
                continue

            record.status = RUNNING
            record.error = None
            record.error_type = None
            self._checkpoint()

            buffer = StringIO()
            observing = obs.enabled()
            metrics_before = obs.metrics_snapshot() if observing else None
            step_span = None
            try:
                with redirect_stdout(buffer):
                    with obs.trace_span(f"step:{name}") as span:
                        if observing:
                            step_span = span
                        outcome = run_step(
                            name,
                            fn,
                            timeout=self.timeout,
                            retries=self.retries,
                            backoff=self.backoff,
                        )
            except StepTimeoutError as error:
                record.status = TIMEOUT
                record.error = str(error)
                record.error_type = type(error).__name__
                record.attempts += 1
            except StepFailedError as error:
                record.status = FAILED
                record.error = str(error.cause)
                record.error_type = (
                    type(error.cause).__name__
                    if error.cause is not None
                    else type(error).__name__
                )
                record.attempts = error.attempts
            except Exception as error:  # pragma: no cover - defensive
                record.status = FAILED
                record.error = str(error)
                record.error_type = type(error).__name__
                record.attempts += 1
            else:
                record.status = OK
                record.attempts = outcome.attempts
                record.duration = outcome.duration
                record.output = buffer.getvalue()
                if step_span is not None:
                    record.trace = step_span.to_dict()
                    record.metrics = obs.snapshot_delta(
                        metrics_before, obs.metrics_snapshot()
                    )
            finally:
                if observing:
                    # Drain the step's root span so the tracer does not
                    # accumulate one tree per step across a long sweep.
                    obs.tracer().collect()

            if record.status == OK:
                self.stream.write(record.output or "")
            else:
                self.stream.write(buffer.getvalue())
            self._checkpoint()

            if record.status != OK and not self.keep_going:
                break
        return self.records

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary_rows(self) -> List[List[Any]]:
        rows: List[List[Any]] = []
        for record in self.records:
            span_wall = record.span_wall_seconds()
            peak = record.peak_memory_bytes()
            rows.append(
                [
                    record.name,
                    record.status.upper(),
                    record.attempts,
                    f"{record.duration:.2f}s",
                    "-" if span_wall is None else f"{span_wall:.3f}s",
                    "-" if peak is None else format_bytes(peak),
                    record.error or "",
                ]
            )
        return rows

    def summary_table(self) -> str:
        from repro.analysis import format_table

        return format_table(
            ["step", "status", "attempts", "duration", "wall (span)",
             "peak mem", "error"],
            self.summary_rows(),
            title="run summary",
        )

    def failed_steps(self) -> List[StepRecord]:
        return [r for r in self.records if r.status != OK]

    def exit_code(self) -> int:
        return 1 if self.failed_steps() else 0
