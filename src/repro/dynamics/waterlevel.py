"""Distributed convergence to max-min fairness (the §2.2 idealization).

The paper models congestion control as instantly "imposing a max-min
fair allocation of the link capacities among the flow rates" (§1).
Real congestion control is a *distributed iterative process*; this
module implements two classic schemes and lets the test suite confirm
that they converge to exactly the allocation our centralized
water-filling oracle computes — closing the loop between the paper's
idealization and a deployable mechanism.

- :class:`LinkFairShareDynamics` — synchronous link/flow iteration in
  the style of Bertsekas & Gallager's distributed flow control (the
  paper's reference [6]) and of Charny-style explicit-rate allocation:
  each link advertises a fair share computed from its capacity, the
  flows it carries, and the flows already bottlenecked elsewhere at a
  lower rate; each flow's rate is the minimum advertised share along
  its path.  Converges to the max-min fair allocation in at most as
  many rounds as there are distinct bottleneck levels.

- :class:`AimdDynamics` — per-flow additive-increase /
  multiplicative-decrease against binary congestion signals, the TCP
  caricature.  Converges only *on time-average* and only approximately;
  included to quantify how far a real-protocol-shaped control loop sits
  from the ideal the theory assumes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, NamedTuple, Optional

from repro.core.flows import Flow
from repro.core.routing import Link, Routing

_INF = float("inf")


class ConvergenceTrace(NamedTuple):
    """The outcome of an iterative run."""

    rates: Dict[Flow, float]
    rounds: int
    converged: bool
    #: max per-flow |rate_t − rate_{t−1}| at the final round.
    final_delta: float
    #: per-round snapshots (optional; None when not recorded).
    history: Optional[List[Dict[Flow, float]]]


class LinkFairShareDynamics:
    """Synchronous explicit-rate iteration converging to max-min fairness.

    Round structure (all links, then all flows, in lockstep):

    1. every link ``e`` computes an advertised share: the solution of
       "capacity = Σ min(rate_f, share)" over the flows on ``e`` —
       i.e. flows currently *below* the share keep their rate (they are
       constrained elsewhere), the rest get the share;
    2. every flow sets its rate to the minimum share along its path.

    With consistent state this is exactly one water-filling refinement,
    and the fixed points are precisely the max-min fair allocations.
    """

    def __init__(self, routing: Routing, capacities: Mapping[Link, object]):
        self.routing = routing
        self.capacities = {
            link: float(cap) for link, cap in capacities.items()
        }
        self._members = routing.flows_per_link()

    def _advertised_share(self, link: Link, rates: Mapping[Flow, float]) -> float:
        """The smallest ``s`` with ``Σ_f min(rate_f, s) ≥ capacity``.

        Flows currently below ``s`` are treated as constrained elsewhere
        and keep their rate; the rest receive ``s``.  When even
        ``s → ∞`` cannot saturate the link (Σ rates < capacity) the link
        is not binding and it advertises its full capacity — an upper
        bound no single flow can exceed anyway, which keeps the
        iteration monotone toward the fixed point.
        """
        capacity = self.capacities[link]
        if capacity == _INF:
            return _INF
        ordered = sorted(rates[f] for f in self._members[link])
        total = len(ordered)
        consumed = 0.0  # rate mass of flows confirmed below the share
        for index, rate in enumerate(ordered):
            count_at_or_above = total - index
            candidate = (capacity - consumed) / count_at_or_above
            if candidate <= rate:
                return candidate
            consumed += rate
        return capacity

    def step(self, rates: Dict[Flow, float]) -> Dict[Flow, float]:
        """One synchronous round; returns the new rate vector."""
        shares = {
            link: self._advertised_share(link, rates) for link in self._members
        }
        new_rates: Dict[Flow, float] = {}
        for flow in self.routing.flows():
            new_rates[flow] = min(
                shares[link] for link in self.routing.links_of(flow)
            )
        return new_rates

    def run(
        self,
        max_rounds: int = 100,
        tolerance: float = 1e-12,
        record_history: bool = False,
    ) -> ConvergenceTrace:
        """Iterate from all-zero rates until the vector stops moving."""
        rates = {flow: 0.0 for flow in self.routing.flows()}
        history: Optional[List[Dict[Flow, float]]] = (
            [dict(rates)] if record_history else None
        )
        delta = _INF
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            new_rates = self.step(rates)
            delta = max(
                abs(new_rates[f] - rates[f]) for f in new_rates
            ) if new_rates else 0.0
            rates = new_rates
            if record_history:
                history.append(dict(rates))
            if delta <= tolerance:
                break
        return ConvergenceTrace(
            rates=rates,
            rounds=rounds,
            converged=delta <= tolerance,
            final_delta=delta,
            history=history,
        )


class AimdDynamics:
    """Additive-increase / multiplicative-decrease toward (rough) fairness.

    Each round, every flow probes: if every link on its path has spare
    capacity it adds ``increase``; if any link is over capacity it
    multiplies by ``decrease``.  The long-run *average* rates hover
    around max-min fairness for single-bottleneck topologies and drift
    from it in general — which is the point of including it.
    """

    def __init__(
        self,
        routing: Routing,
        capacities: Mapping[Link, object],
        increase: float = 0.01,
        decrease: float = 0.5,
    ):
        if not 0 < decrease < 1:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        if increase <= 0:
            raise ValueError(f"increase must be positive, got {increase}")
        self.routing = routing
        self.capacities = {link: float(c) for link, c in capacities.items()}
        self.increase = increase
        self.decrease = decrease
        self._members = routing.flows_per_link()

    def step(self, rates: Dict[Flow, float]) -> Dict[Flow, float]:
        loads = {
            link: sum(rates[f] for f in flows)
            for link, flows in self._members.items()
        }
        congested = {
            link
            for link, load in loads.items()
            if self.capacities[link] != _INF and load > self.capacities[link]
        }
        new_rates: Dict[Flow, float] = {}
        for flow in self.routing.flows():
            if any(link in congested for link in self.routing.links_of(flow)):
                new_rates[flow] = rates[flow] * self.decrease
            else:
                new_rates[flow] = rates[flow] + self.increase
        return new_rates

    def run(self, rounds: int = 2000, warmup: int = 500) -> Dict[Flow, float]:
        """Iterate and return the post-warmup time-average rates."""
        if warmup >= rounds:
            raise ValueError("warmup must be smaller than rounds")
        rates = {flow: self.increase for flow in self.routing.flows()}
        totals = {flow: 0.0 for flow in self.routing.flows()}
        for round_index in range(rounds):
            rates = self.step(rates)
            if round_index >= warmup:
                for flow, rate in rates.items():
                    totals[flow] += rate
            if not rates:
                break
        samples = rounds - warmup
        return {flow: total / samples for flow, total in totals.items()}
