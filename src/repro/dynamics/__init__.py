"""Distributed congestion-control dynamics converging to max-min fairness."""

from repro.dynamics.waterlevel import (
    AimdDynamics,
    ConvergenceTrace,
    LinkFairShareDynamics,
)

__all__ = ["AimdDynamics", "ConvergenceTrace", "LinkFairShareDynamics"]
