"""Micro-batching simulation loop for streaming allocation (§2.2 under
churn).

:func:`repro.sim.flowsim.simulate` re-consults its policy at every
solver-visible event — the fluid idealization in which congestion
control converges instantly.  Under heavy churn that cadence dominates
the cost: one water-fill per arrival/departure.  This module trades a
bounded amount of rate *staleness* for throughput:

- :func:`simulate_stream` drains all events sharing a timestamp **and**
  every further event landing within a configurable ``batch_window``,
  applies them to the policy as one delta, and re-solves once per batch.
  Between re-solves, jobs are served at the standing (piecewise-
  constant) rates; completions are processed exactly (each pops from a
  completion heap in O(log F)) but the freed capacity is only
  redistributed at the next batch boundary.  ``batch_window=0``
  delegates to :func:`~repro.sim.flowsim.simulate` outright and is
  byte-identical to it.
- :func:`simulate_sharded` partitions a pod-local workload into
  ``pods`` independent shards — sources/destinations by ToR switch,
  middle switches by index — so the flow×link incidence is
  block-diagonal and each shard simulates (and water-fills) its own
  block.  With one pod it reduces exactly to the unsharded loop.

Pair either with ``MaxMinCongestionControl(backend="streaming")`` so
each batched re-solve is itself incremental: the solver patches the
affected suffix of water-fill rounds instead of starting over.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs import counter, histogram, trace_span
from repro.sim.events import EventQueue, load_failure_schedule
from repro.sim.flowsim import (
    _TIME_EPS,
    CompletedJob,
    SimulationError,
    SimulationResult,
    simulate,
)
from repro.sim.jobs import FlowJob

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_RUNS = counter("sim.stream.runs")
_EVENTS = counter("sim.events")
_COMPLETIONS = counter("sim.completions")
_FAILURES = counter("sim.failures_applied")
_POLICY_CALLS = counter("sim.policy_consultations")
_BATCH = histogram("sim.batch_size")

__all__ = ["simulate_stream", "simulate_sharded", "pod_of_switch", "middle_pools"]


def simulate_stream(
    jobs: Sequence[FlowJob],
    policy,
    batch_window: float = 0.0,
    max_time: Optional[float] = None,
    max_events: int = 1_000_000,
    failure_schedule=None,
    engine: str = "auto",
) -> SimulationResult:
    """Run ``jobs`` under ``policy``, re-solving at most once per
    ``batch_window`` of simulated time.

    Contract matches :func:`repro.sim.flowsim.simulate` (same
    :class:`~repro.sim.flowsim.SimulationResult`, same ``forget`` /
    ``set_link_factors`` policy hooks); ``batch_window=0`` *is* that
    function.  With a positive window, a solver-visible change (arrival,
    served completion, failure) starts a deadline ``now + batch_window``;
    further changes pile into the same batch and the policy is
    re-consulted once, at the deadline or at the next forced consult,
    whichever comes first.  Work accounting stays exact — only the rate
    *reassignment* is deferred, which is the real-world regime of a
    centralized allocator with a bounded update cadence (Shah & Xie's
    centralized congestion control, PAPERS.md).

    The batch size (solver-visible changes absorbed per re-solve) is
    observed by the ``sim.batch_size`` histogram.

    ``engine`` selects the event-loop implementation exactly as in
    :func:`~repro.sim.flowsim.simulate` — ``"array"`` runs the NumPy
    slot-store loop in :mod:`repro.sim.arraysim`, ``"auto"`` picks it
    for large workloads, and ``REPRO_SHADOW`` cross-checks sampled
    array runs against this object loop.
    """
    if batch_window <= 0.0:
        return simulate(
            jobs,
            policy,
            max_time=max_time,
            max_events=max_events,
            failure_schedule=failure_schedule,
            engine=engine,
        )
    from repro.sim import arraysim

    chosen = arraysim.resolve_engine(engine, len(jobs))
    _RUNS.inc()
    with trace_span(
        "sim.simulate_stream",
        jobs=len(jobs),
        batch_window=batch_window,
        engine=chosen,
    ) as span:
        if chosen == "array":
            result = arraysim.with_shadow(
                lambda: arraysim._simulate_stream_array(
                    jobs, policy, batch_window, max_time, max_events,
                    failure_schedule,
                ),
                lambda ref: _simulate_stream(
                    jobs, ref, batch_window, max_time, max_events,
                    failure_schedule,
                ),
                policy,
                context="sim.simulate_stream",
            )
        else:
            result = _simulate_stream(
                jobs, policy, batch_window, max_time, max_events,
                failure_schedule,
            )
        span.set(
            completed=len(result.completed),
            unfinished=len(result.unfinished),
            sim_end_time=result.end_time,
        )
    return result


def _simulate_stream(
    jobs: Sequence[FlowJob],
    policy,
    batch_window: float,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
) -> SimulationResult:
    queue = EventQueue()
    for job in jobs:
        queue.push(job.arrival, "arrival", job)
    if failure_schedule is not None:
        if not hasattr(policy, "set_link_factors"):
            raise SimulationError(
                f"{type(policy).__name__} has no set_link_factors hook and "
                "cannot replay a failure schedule"
            )
        load_failure_schedule(queue, failure_schedule)

    active: Dict[int, FlowJob] = {}
    #: Remaining size per job *as of* ``base_t`` (the last global
    #: advance), under the standing ``rates``.
    remaining: Dict[int, float] = {}
    rates: Dict[int, float] = {}
    completed: List[CompletedJob] = []
    link_factors: Dict = {}
    work_done = 0.0
    now = 0.0
    base_t = 0.0
    events = 0
    #: Completion events for the standing rates, pushed in sorted
    #: ``(finish, job_id)`` order at each re-solve so the queue's
    #: ``(time, sequence)`` ordering reproduces it; entries from before
    #: the latest re-solve are cancelled and dropped lazily
    #: (tombstones, see :meth:`repro.sim.events.EventQueue.cancel`).
    #: Entries pop in push order, so the still-pending sequences are a
    #: FIFO window over ``comp_seqs``.
    completions = EventQueue()
    comp_seqs: Deque[int] = deque()
    #: Pending re-solve deadline and the change count it will absorb.
    deadline: Optional[float] = None
    pending = 0

    def advance_to(target: float) -> None:
        """Serve every job at its standing rate up to ``target``."""
        nonlocal base_t, work_done
        dt = target - base_t
        if dt < -_TIME_EPS:
            raise SimulationError(f"time went backwards: {base_t} -> {target}")
        if dt > 0.0:
            for jid, rate in rates.items():
                if rate > 0 and jid in remaining:
                    served = min(remaining[jid], rate * dt)
                    remaining[jid] -= served
                    work_done += served
        base_t = target

    def retire(jid: int, at: float, served: float) -> None:
        nonlocal work_done
        job = active.pop(jid)
        remaining.pop(jid, None)
        work_done += served
        policy.forget(jid)
        duration = at - job.arrival
        completed.append(
            CompletedJob(
                job=job,
                completion_time=at,
                duration=duration,
                slowdown=duration / job.size if job.size > 0 else 1.0,
            )
        )
        _COMPLETIONS.inc()

    def consult(at: float) -> None:
        """The batch boundary: advance, re-solve, requeue completions."""
        nonlocal rates, deadline, pending
        advance_to(at)
        # Retire anything that drained to zero exactly at the boundary
        # (zero-size arrivals, simultaneous completions).
        for jid in [j for j, left in remaining.items() if left <= _TIME_EPS]:
            retire(jid, at, 0.0)
        _POLICY_CALLS.inc()
        _BATCH.observe(max(1, pending))
        rates = policy.rates(active, remaining, at)
        pending = 0
        deadline = None
        # Completions computed for the previous rates are stale: cancel
        # their still-pending sequences (dropped lazily during pops)
        # and push the new batch in (finish, job_id) order, so the
        # queue's (time, sequence) ordering reproduces exactly the
        # (finish, job_id) tie-breaking of the per-event loop.
        while comp_seqs:
            completions.cancel(comp_seqs.popleft())
        for finish, jid in sorted(
            (at + remaining[jid] / rate, jid)
            for jid, rate in rates.items()
            if rate > 0 and jid in remaining
        ):
            comp_seqs.append(completions.push(finish, "completion", jid))

    def touch(at: float) -> None:
        """Register one solver-visible change at time ``at``."""
        nonlocal deadline, pending
        pending += 1
        candidate = at + batch_window
        if deadline is None or candidate < deadline:
            deadline = candidate

    pending_arrivals = len(jobs)
    while queue or active:
        if not active and pending_arrivals == 0:
            break  # only failure events remain; nothing left to serve
        events += 1
        _EVENTS.inc()
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")
        if max_time is not None and now >= max_time:
            break

        # Next thing that happens: queued event, valid completion, or
        # the batch deadline.
        upcoming_completion = completions.peek()
        next_completion = (
            upcoming_completion.time if upcoming_completion else None
        )
        next_event = queue.peek()
        next_t = math.inf if max_time is None else max_time
        if next_event is not None:
            next_t = min(next_t, next_event.time)
        if next_completion is not None:
            next_t = min(next_t, next_completion)
        if deadline is not None:
            next_t = min(next_t, deadline)
        if math.isinf(next_t):
            raise SimulationError(
                f"{len(active)} jobs active but none served; "
                "the policy starved the residual workload"
            )
        if max_time is not None and next_t > max_time:
            next_t = max_time
        now = next_t
        if max_time is not None and now >= max_time:
            break

        if next_completion is not None and next_completion <= now + _TIME_EPS:
            event = completions.pop()
            comp_seqs.popleft()
            finish, jid = event.time, event.payload
            # The job's full residual was served over [base_t, finish];
            # account it directly and leave the others' lazily advanced
            # state untouched (their rates are unchanged).
            served = remaining.get(jid, 0.0)
            if jid in active:
                retire(jid, finish, served)
                remaining.pop(jid, None)
                touch(finish)  # freed capacity -> re-solve within window
            continue

        if next_event is not None and next_event.time <= now + _TIME_EPS:
            event = queue.pop()
            if event.kind == "failure":
                link_factors[event.payload.link] = event.payload.factor
                _FAILURES.inc()
                while queue:
                    upcoming = queue.peek()
                    if (
                        upcoming.kind != "failure"
                        or upcoming.time > event.time + _TIME_EPS
                    ):
                        break
                    failure = queue.pop().payload
                    link_factors[failure.link] = failure.factor
                    _FAILURES.inc()
                policy.set_link_factors(dict(link_factors))
                touch(event.time)
                continue
            job = event.payload
            if job.size <= _TIME_EPS:
                # Zero-size transfer: completes the instant it arrives,
                # never contends — matching the per-event loop.
                active[job.job_id] = job
                pending_arrivals -= 1
                retire(job.job_id, event.time, 0.0)
                continue
            active[job.job_id] = job
            remaining[job.job_id] = job.size
            pending_arrivals -= 1
            touch(event.time)
            continue

        # The batch deadline is the earliest happening: re-solve.
        consult(now)

    advance_to(now)
    for jid in [j for j, left in remaining.items() if left <= _TIME_EPS]:
        retire(jid, now, 0.0)
    return SimulationResult(
        completed=completed,
        unfinished=list(active.values()),
        work_done=work_done,
        end_time=now,
    )


# ----------------------------------------------------------------------
# Pod sharding
# ----------------------------------------------------------------------
def pod_of_switch(switch: int, num_switches: int, pods: int) -> int:
    """The pod (0-based) owning ToR switch ``switch`` (1-based)."""
    return (switch - 1) * pods // num_switches


def middle_pools(num_middles: int, pods: int) -> List[Tuple[int, ...]]:
    """Partition middle-switch indices ``1..num_middles`` into ``pods``
    contiguous pools (every pool non-empty; requires
    ``pods <= num_middles``)."""
    if not 1 <= pods <= num_middles:
        raise ValueError(
            f"pods must be in 1..{num_middles} (one middle per pod), "
            f"got {pods}"
        )
    pools: List[List[int]] = [[] for _ in range(pods)]
    for m in range(1, num_middles + 1):
        pools[(m - 1) * pods // num_middles].append(m)
    return [tuple(pool) for pool in pools]


def _shard_simulate(
    network,
    shard_jobs: Sequence[FlowJob],
    pool: Tuple[int, ...],
    batch_window: float,
    router: str,
    seed: int,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
    engine: str,
) -> SimulationResult:
    """Simulate one pod shard with its pool-restricted policy."""
    from repro.sim.policies import MaxMinCongestionControl

    policy = MaxMinCongestionControl(
        network,
        router=router,
        seed=seed,
        backend="streaming",
        middle_pool=pool,
    )
    return simulate_stream(
        shard_jobs,
        policy,
        batch_window=batch_window,
        max_time=max_time,
        max_events=max_events,
        failure_schedule=failure_schedule,
        engine=engine,
    )


#: Per-job completion status codes in the sharded output arrays.
_SHARD_DROPPED, _SHARD_COMPLETED, _SHARD_UNFINISHED = 0, 1, 2


def _shard_worker(
    pod: int,
    network,
    pools,
    batch_window: float,
    router: str,
    seed: int,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
    engine: str,
) -> int:
    """Worker task for one pod: rebuild the shard's jobs from the shared
    input columns, simulate it, and scatter the completion columns back
    into the shared output arrays — only the pod index crosses the pipe.
    """
    from repro.parallel import shared_array
    from repro.sim.jobs import JOB_COLUMNS, jobs_from_arrays

    ptr = shared_array("shard_ptr")
    first, last = int(ptr[pod]), int(ptr[pod + 1])
    shard_jobs = jobs_from_arrays(
        *(shared_array(column)[first:last] for column in JOB_COLUMNS)
    )
    result = _shard_simulate(
        network, shard_jobs, pools[pod], batch_window, router, seed,
        max_time, max_events, failure_schedule, engine,
    )
    status = shared_array("status")
    completion = shared_array("completion_time")
    duration = shared_array("duration")
    slowdown = shared_array("slowdown")
    index_of = {job.job_id: first + i for i, job in enumerate(shard_jobs)}
    for record in result.completed:
        i = index_of[record.job.job_id]
        status[i] = _SHARD_COMPLETED
        completion[i] = record.completion_time
        duration[i] = record.duration
        slowdown[i] = record.slowdown
    for job in result.unfinished:
        status[index_of[job.job_id]] = _SHARD_UNFINISHED
    shared_array("work_done")[pod] = result.work_done
    shared_array("end_time")[pod] = result.end_time
    return pod


def simulate_sharded(
    network,
    workload: Sequence[FlowJob],
    pods: int = 1,
    batch_window: float = 0.0,
    router: str = "ecmp",
    seed: int = 0,
    max_time: Optional[float] = None,
    max_events: int = 1_000_000,
    failure_schedule=None,
    engine: str = "auto",
    jobs: int = 1,
) -> SimulationResult:
    """Simulate a pod-local workload as ``pods`` independent shards.

    Sources/destinations are partitioned by ToR switch index and the
    middle switches into ``pods`` contiguous pools; each shard gets its
    own ``MaxMinCongestionControl(backend="streaming")`` restricted to
    its pool, so its flow×link incidence block never overlaps another
    shard's and simulating them separately is exact, not an
    approximation.  Every job must be pod-local (source and destination
    in the same pod — e.g. :func:`repro.workloads.stochastic.
    churn_workload` with matching ``pods``); a cross-pod job raises
    :class:`~repro.sim.flowsim.SimulationError`.

    With ``pods=1`` the single pool is all middles — hash-identical
    pinning to unrestricted ECMP — and the result is byte-identical to
    :func:`simulate_stream` on the whole workload.

    ``jobs`` dispatches the shards to that many worker processes over
    the zero-copy :class:`repro.parallel.SharedArrays` transport: the
    job columns are packed into one shared-memory block, each worker
    rebuilds only its shard's slice and writes per-job completion
    columns (plus per-pod ``work_done`` / ``end_time``) back into
    shared output arrays, so only pod indices cross the pipe.  The
    merged result is byte-identical to ``jobs=1`` — per-shard
    computations are exactly the ones the sequential loop runs, the
    completion sort key ``(completion_time, job_id)`` is a strict total
    order, and ``work_done`` is summed in pod order — and with
    ``REPRO_OBS=1`` worker telemetry is shipped home and merged, so
    counters match the sequential run too.  ``failure_schedule`` is
    replayed inside every shard; ``engine`` selects the event-loop
    implementation per shard (see :func:`simulate_stream`).

    Results are merged deterministically: completions sorted by
    ``(completion_time, job_id)``, unfinished jobs by ``job_id``,
    ``work_done`` summed, ``end_time`` the latest shard clock.
    """
    pools = middle_pools(network.num_middles, pods)
    num_switches = 2 * network.n
    if pods > num_switches:
        raise ValueError(
            f"pods must be <= {num_switches} (one ToR switch per pod), "
            f"got {pods}"
        )
    shards: List[List[FlowJob]] = [[] for _ in range(pods)]
    for job in workload:
        pod = pod_of_switch(job.source.switch, num_switches, pods)
        dest_pod = pod_of_switch(job.dest.switch, num_switches, pods)
        if dest_pod != pod:
            raise SimulationError(
                f"job {job.job_id} crosses pods ({pod} -> {dest_pod}); "
                "sharded simulation requires a pod-local workload"
            )
        shards[pod].append(job)

    from repro.parallel import resolve_jobs

    occupied = [pod for pod, shard in enumerate(shards) if shard]
    workers = min(resolve_jobs(jobs), len(occupied))
    with trace_span(
        "sim.simulate_sharded",
        jobs=len(workload),
        pods=pods,
        batch_window=batch_window,
        workers=workers,
    ):
        if workers > 1:
            return _simulate_sharded_parallel(
                network, shards, occupied, pools, batch_window, router,
                seed, max_time, max_events, failure_schedule, engine,
                workers,
            )
        completed: List[CompletedJob] = []
        unfinished: List[FlowJob] = []
        work_done = 0.0
        end_time = 0.0
        for pod in occupied:
            result = _shard_simulate(
                network, shards[pod], pools[pod], batch_window, router,
                seed, max_time, max_events, failure_schedule, engine,
            )
            completed.extend(result.completed)
            unfinished.extend(result.unfinished)
            work_done += result.work_done
            end_time = max(end_time, result.end_time)
    completed.sort(key=lambda c: (c.completion_time, c.job.job_id))
    unfinished.sort(key=lambda job: job.job_id)
    return SimulationResult(
        completed=completed,
        unfinished=unfinished,
        work_done=work_done,
        end_time=end_time,
    )


def _simulate_sharded_parallel(
    network,
    shards: List[List[FlowJob]],
    occupied: List[int],
    pools,
    batch_window: float,
    router: str,
    seed: int,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
    engine: str,
    workers: int,
) -> SimulationResult:
    """The multi-process path of :func:`simulate_sharded` (same merge
    contract; see its docstring for the byte-identity argument)."""
    import functools

    import numpy as np

    from repro.parallel import parallel_map, shared_arrays
    from repro.sim.jobs import jobs_to_arrays

    flat_jobs: List[FlowJob] = []
    ptr = np.zeros(len(shards) + 1, dtype=np.int64)
    for pod, shard in enumerate(shards):
        flat_jobs.extend(shard)
        ptr[pod + 1] = len(flat_jobs)
    total = len(flat_jobs)
    columns = jobs_to_arrays(flat_jobs)
    columns["shard_ptr"] = ptr
    columns["status"] = np.zeros(total, dtype=np.int8)
    columns["completion_time"] = np.full(total, np.nan)
    columns["duration"] = np.full(total, np.nan)
    columns["slowdown"] = np.full(total, np.nan)
    columns["work_done"] = np.zeros(len(shards))
    columns["end_time"] = np.zeros(len(shards))

    worker = functools.partial(
        _shard_worker,
        network=network,
        pools=pools,
        batch_window=batch_window,
        router=router,
        seed=seed,
        max_time=max_time,
        max_events=max_events,
        failure_schedule=failure_schedule,
        engine=engine,
    )
    with shared_arrays(columns) as block:
        parallel_map(worker, occupied, jobs=workers, chunksize=1,
                     shared=block)
        status = block["status"]
        completion = block["completion_time"]
        duration = block["duration"]
        slowdown = block["slowdown"]
        completed = [
            CompletedJob(
                job=flat_jobs[i],
                completion_time=float(completion[i]),
                duration=float(duration[i]),
                slowdown=float(slowdown[i]),
            )
            for i in np.nonzero(status == _SHARD_COMPLETED)[0].tolist()
        ]
        unfinished = [
            flat_jobs[i]
            for i in np.nonzero(status == _SHARD_UNFINISHED)[0].tolist()
        ]
        # Pod-order summation: bit-identical to the sequential loop's
        # running += over occupied shards.
        work_done = 0.0
        end_time = 0.0
        for pod in occupied:
            work_done += float(block["work_done"][pod])
            end_time = max(end_time, float(block["end_time"][pod]))
    completed.sort(key=lambda c: (c.completion_time, c.job.job_id))
    unfinished.sort(key=lambda job: job.job_id)
    return SimulationResult(
        completed=completed,
        unfinished=unfinished,
        work_done=work_done,
        end_time=end_time,
    )
