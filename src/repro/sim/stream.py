"""Micro-batching simulation loop for streaming allocation (§2.2 under
churn).

:func:`repro.sim.flowsim.simulate` re-consults its policy at every
solver-visible event — the fluid idealization in which congestion
control converges instantly.  Under heavy churn that cadence dominates
the cost: one water-fill per arrival/departure.  This module trades a
bounded amount of rate *staleness* for throughput:

- :func:`simulate_stream` drains all events sharing a timestamp **and**
  every further event landing within a configurable ``batch_window``,
  applies them to the policy as one delta, and re-solves once per batch.
  Between re-solves, jobs are served at the standing (piecewise-
  constant) rates; completions are processed exactly (each pops from a
  completion heap in O(log F)) but the freed capacity is only
  redistributed at the next batch boundary.  ``batch_window=0``
  delegates to :func:`~repro.sim.flowsim.simulate` outright and is
  byte-identical to it.
- :func:`simulate_sharded` partitions a pod-local workload into
  ``pods`` independent shards — sources/destinations by ToR switch,
  middle switches by index — so the flow×link incidence is
  block-diagonal and each shard simulates (and water-fills) its own
  block.  With one pod it reduces exactly to the unsharded loop.

Pair either with ``MaxMinCongestionControl(backend="streaming")`` so
each batched re-solve is itself incremental: the solver patches the
affected suffix of water-fill rounds instead of starting over.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import counter, histogram, trace_span
from repro.sim.events import EventQueue, load_failure_schedule
from repro.sim.flowsim import (
    _TIME_EPS,
    CompletedJob,
    SimulationError,
    SimulationResult,
    simulate,
)
from repro.sim.jobs import FlowJob

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_RUNS = counter("sim.stream.runs")
_EVENTS = counter("sim.events")
_COMPLETIONS = counter("sim.completions")
_FAILURES = counter("sim.failures_applied")
_POLICY_CALLS = counter("sim.policy_consultations")
_BATCH = histogram("sim.batch_size")

__all__ = ["simulate_stream", "simulate_sharded", "pod_of_switch", "middle_pools"]


def simulate_stream(
    jobs: Sequence[FlowJob],
    policy,
    batch_window: float = 0.0,
    max_time: Optional[float] = None,
    max_events: int = 1_000_000,
    failure_schedule=None,
) -> SimulationResult:
    """Run ``jobs`` under ``policy``, re-solving at most once per
    ``batch_window`` of simulated time.

    Contract matches :func:`repro.sim.flowsim.simulate` (same
    :class:`~repro.sim.flowsim.SimulationResult`, same ``forget`` /
    ``set_link_factors`` policy hooks); ``batch_window=0`` *is* that
    function.  With a positive window, a solver-visible change (arrival,
    served completion, failure) starts a deadline ``now + batch_window``;
    further changes pile into the same batch and the policy is
    re-consulted once, at the deadline or at the next forced consult,
    whichever comes first.  Work accounting stays exact — only the rate
    *reassignment* is deferred, which is the real-world regime of a
    centralized allocator with a bounded update cadence (Shah & Xie's
    centralized congestion control, PAPERS.md).

    The batch size (solver-visible changes absorbed per re-solve) is
    observed by the ``sim.batch_size`` histogram.
    """
    if batch_window <= 0.0:
        return simulate(
            jobs,
            policy,
            max_time=max_time,
            max_events=max_events,
            failure_schedule=failure_schedule,
        )
    _RUNS.inc()
    with trace_span(
        "sim.simulate_stream", jobs=len(jobs), batch_window=batch_window
    ) as span:
        result = _simulate_stream(
            jobs, policy, batch_window, max_time, max_events, failure_schedule
        )
        span.set(
            completed=len(result.completed),
            unfinished=len(result.unfinished),
            sim_end_time=result.end_time,
        )
    return result


def _simulate_stream(
    jobs: Sequence[FlowJob],
    policy,
    batch_window: float,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
) -> SimulationResult:
    queue = EventQueue()
    for job in jobs:
        queue.push(job.arrival, "arrival", job)
    if failure_schedule is not None:
        if not hasattr(policy, "set_link_factors"):
            raise SimulationError(
                f"{type(policy).__name__} has no set_link_factors hook and "
                "cannot replay a failure schedule"
            )
        load_failure_schedule(queue, failure_schedule)

    active: Dict[int, FlowJob] = {}
    #: Remaining size per job *as of* ``base_t`` (the last global
    #: advance), under the standing ``rates``.
    remaining: Dict[int, float] = {}
    rates: Dict[int, float] = {}
    completed: List[CompletedJob] = []
    link_factors: Dict = {}
    work_done = 0.0
    now = 0.0
    base_t = 0.0
    events = 0
    #: Completion heap entries ``(finish_time, job_id, epoch)``; stale
    #: epochs (from before the latest re-solve) are dropped lazily.
    heap: List[Tuple[float, int, int]] = []
    epoch = 0
    #: Pending re-solve deadline and the change count it will absorb.
    deadline: Optional[float] = None
    pending = 0

    def advance_to(target: float) -> None:
        """Serve every job at its standing rate up to ``target``."""
        nonlocal base_t, work_done
        dt = target - base_t
        if dt < -_TIME_EPS:
            raise SimulationError(f"time went backwards: {base_t} -> {target}")
        if dt > 0.0:
            for jid, rate in rates.items():
                if rate > 0 and jid in remaining:
                    served = min(remaining[jid], rate * dt)
                    remaining[jid] -= served
                    work_done += served
        base_t = target

    def retire(jid: int, at: float, served: float) -> None:
        nonlocal work_done
        job = active.pop(jid)
        remaining.pop(jid, None)
        work_done += served
        policy.forget(jid)
        duration = at - job.arrival
        completed.append(
            CompletedJob(
                job=job,
                completion_time=at,
                duration=duration,
                slowdown=duration / job.size if job.size > 0 else 1.0,
            )
        )
        _COMPLETIONS.inc()

    def consult(at: float) -> None:
        """The batch boundary: advance, re-solve, rebuild the heap."""
        nonlocal rates, epoch, deadline, pending
        advance_to(at)
        # Retire anything that drained to zero exactly at the boundary
        # (zero-size arrivals, simultaneous completions).
        for jid in [j for j, left in remaining.items() if left <= _TIME_EPS]:
            retire(jid, at, 0.0)
        _POLICY_CALLS.inc()
        _BATCH.observe(max(1, pending))
        rates = policy.rates(active, remaining, at)
        pending = 0
        deadline = None
        epoch += 1
        heap.clear()
        for jid, rate in rates.items():
            if rate > 0 and jid in remaining:
                heapq.heappush(
                    heap, (at + remaining[jid] / rate, jid, epoch)
                )

    def touch(at: float) -> None:
        """Register one solver-visible change at time ``at``."""
        nonlocal deadline, pending
        pending += 1
        candidate = at + batch_window
        if deadline is None or candidate < deadline:
            deadline = candidate

    pending_arrivals = len(jobs)
    while queue or active:
        if not active and pending_arrivals == 0:
            break  # only failure events remain; nothing left to serve
        events += 1
        _EVENTS.inc()
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")
        if max_time is not None and now >= max_time:
            break

        # Next thing that happens: queued event, valid completion, or
        # the batch deadline.
        while heap and heap[0][2] != epoch:
            heapq.heappop(heap)
        next_completion = heap[0][0] if heap else None
        next_event = queue.peek()
        next_t = math.inf if max_time is None else max_time
        if next_event is not None:
            next_t = min(next_t, next_event.time)
        if next_completion is not None:
            next_t = min(next_t, next_completion)
        if deadline is not None:
            next_t = min(next_t, deadline)
        if math.isinf(next_t):
            raise SimulationError(
                f"{len(active)} jobs active but none served; "
                "the policy starved the residual workload"
            )
        if max_time is not None and next_t > max_time:
            next_t = max_time
        now = next_t
        if max_time is not None and now >= max_time:
            break

        if next_completion is not None and next_completion <= now + _TIME_EPS:
            finish, jid, _ = heapq.heappop(heap)
            # The job's full residual was served over [base_t, finish];
            # account it directly and leave the others' lazily advanced
            # state untouched (their rates are unchanged).
            served = remaining.get(jid, 0.0)
            if jid in active:
                retire(jid, finish, served)
                remaining.pop(jid, None)
                touch(finish)  # freed capacity -> re-solve within window
            continue

        if next_event is not None and next_event.time <= now + _TIME_EPS:
            event = queue.pop()
            if event.kind == "failure":
                link_factors[event.payload.link] = event.payload.factor
                _FAILURES.inc()
                while queue:
                    upcoming = queue.peek()
                    if (
                        upcoming.kind != "failure"
                        or upcoming.time > event.time + _TIME_EPS
                    ):
                        break
                    failure = queue.pop().payload
                    link_factors[failure.link] = failure.factor
                    _FAILURES.inc()
                policy.set_link_factors(dict(link_factors))
                touch(event.time)
                continue
            job = event.payload
            if job.size <= _TIME_EPS:
                # Zero-size transfer: completes the instant it arrives,
                # never contends — matching the per-event loop.
                active[job.job_id] = job
                pending_arrivals -= 1
                retire(job.job_id, event.time, 0.0)
                continue
            active[job.job_id] = job
            remaining[job.job_id] = job.size
            pending_arrivals -= 1
            touch(event.time)
            continue

        # The batch deadline is the earliest happening: re-solve.
        consult(now)

    advance_to(now)
    for jid in [j for j, left in remaining.items() if left <= _TIME_EPS]:
        retire(jid, now, 0.0)
    return SimulationResult(
        completed=completed,
        unfinished=list(active.values()),
        work_done=work_done,
        end_time=now,
    )


# ----------------------------------------------------------------------
# Pod sharding
# ----------------------------------------------------------------------
def pod_of_switch(switch: int, num_switches: int, pods: int) -> int:
    """The pod (0-based) owning ToR switch ``switch`` (1-based)."""
    return (switch - 1) * pods // num_switches


def middle_pools(num_middles: int, pods: int) -> List[Tuple[int, ...]]:
    """Partition middle-switch indices ``1..num_middles`` into ``pods``
    contiguous pools (every pool non-empty; requires
    ``pods <= num_middles``)."""
    if not 1 <= pods <= num_middles:
        raise ValueError(
            f"pods must be in 1..{num_middles} (one middle per pod), "
            f"got {pods}"
        )
    pools: List[List[int]] = [[] for _ in range(pods)]
    for m in range(1, num_middles + 1):
        pools[(m - 1) * pods // num_middles].append(m)
    return [tuple(pool) for pool in pools]


def simulate_sharded(
    network,
    jobs: Sequence[FlowJob],
    pods: int = 1,
    batch_window: float = 0.0,
    router: str = "ecmp",
    seed: int = 0,
    max_time: Optional[float] = None,
    max_events: int = 1_000_000,
) -> SimulationResult:
    """Simulate a pod-local workload as ``pods`` independent shards.

    Sources/destinations are partitioned by ToR switch index and the
    middle switches into ``pods`` contiguous pools; each shard gets its
    own ``MaxMinCongestionControl(backend="streaming")`` restricted to
    its pool, so its flow×link incidence block never overlaps another
    shard's and simulating them separately is exact, not an
    approximation.  Every job must be pod-local (source and destination
    in the same pod — e.g. :func:`repro.workloads.stochastic.
    churn_workload` with matching ``pods``); a cross-pod job raises
    :class:`~repro.sim.flowsim.SimulationError`.

    With ``pods=1`` the single pool is all middles — hash-identical
    pinning to unrestricted ECMP — and the result is byte-identical to
    :func:`simulate_stream` on the whole workload.

    Results are merged deterministically: completions sorted by
    ``(completion_time, job_id)``, unfinished jobs by ``job_id``,
    ``work_done`` summed, ``end_time`` the latest shard clock.
    """
    from repro.sim.policies import MaxMinCongestionControl

    pools = middle_pools(network.num_middles, pods)
    num_switches = 2 * network.n
    if pods > num_switches:
        raise ValueError(
            f"pods must be <= {num_switches} (one ToR switch per pod), "
            f"got {pods}"
        )
    shards: List[List[FlowJob]] = [[] for _ in range(pods)]
    for job in jobs:
        pod = pod_of_switch(job.source.switch, num_switches, pods)
        dest_pod = pod_of_switch(job.dest.switch, num_switches, pods)
        if dest_pod != pod:
            raise SimulationError(
                f"job {job.job_id} crosses pods ({pod} -> {dest_pod}); "
                "sharded simulation requires a pod-local workload"
            )
        shards[pod].append(job)

    with trace_span(
        "sim.simulate_sharded",
        jobs=len(jobs),
        pods=pods,
        batch_window=batch_window,
    ):
        completed: List[CompletedJob] = []
        unfinished: List[FlowJob] = []
        work_done = 0.0
        end_time = 0.0
        for pod, shard_jobs in enumerate(shards):
            if not shard_jobs:
                continue
            policy = MaxMinCongestionControl(
                network,
                router=router,
                seed=seed,
                backend="streaming",
                middle_pool=pools[pod],
            )
            result = simulate_stream(
                shard_jobs,
                policy,
                batch_window=batch_window,
                max_time=max_time,
                max_events=max_events,
            )
            completed.extend(result.completed)
            unfinished.extend(result.unfinished)
            work_done += result.work_done
            end_time = max(end_time, result.end_time)
    completed.sort(key=lambda c: (c.completion_time, c.job.job_id))
    unfinished.sort(key=lambda job: job.job_id)
    return SimulationResult(
        completed=completed,
        unfinished=unfinished,
        work_done=work_done,
        end_time=end_time,
    )
