"""A minimal discrete-event engine for flow-level simulation.

The R1 discussion (§7) argues that *scheduling* — delaying some flows so
others transmit at link capacity — can beat max-min fair congestion
control on average flow completion time.  Evaluating that claim needs a
flow-level simulator: flows arrive over time carrying a finite size,
receive service at policy-determined rates, and depart when their
remaining size hits zero.

This module provides the engine: a time-ordered event queue plus the
bookkeeping to advance "work done" between events under piecewise-
constant rates.  Policies (how rates are chosen) live in
:mod:`repro.sim.policies`; the driver loop in :mod:`repro.sim.flowsim`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, NamedTuple, Optional, Tuple


class Event(NamedTuple):
    """A scheduled occurrence.  Ordering: time, then insertion order."""

    time: float
    sequence: int
    kind: str
    payload: Any


class EventQueue:
    """A stable min-heap of events keyed by time.

    >>> q = EventQueue()
    >>> q.push(2.0, "b", None)
    >>> q.push(1.0, "a", None)
    >>> q.pop().kind
    'a'
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any) -> None:
        """Schedule an event at ``time`` (ties broken by insertion order)."""
        if time < 0:
            raise ValueError(f"negative event time: {time}")
        heapq.heappush(self._heap, Event(time, next(self._counter), kind, payload))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


def load_failure_schedule(queue: EventQueue, schedule) -> int:
    """Push every event of a failure schedule onto ``queue``.

    ``schedule`` is a :class:`repro.failures.schedule.FailureSchedule`
    (duck-typed: anything with an ``events()`` method yielding objects
    with ``time`` works).  Each event is enqueued with kind
    ``"failure"`` and the original event as payload, so the driver loop
    can replay a recorded failure trace alongside arrivals and
    completions.  Returns the number of events loaded.
    """
    count = 0
    for event in schedule.events():
        queue.push(event.time, "failure", event)
        count += 1
    return count
