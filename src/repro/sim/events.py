"""A minimal discrete-event engine for flow-level simulation.

The R1 discussion (§7) argues that *scheduling* — delaying some flows so
others transmit at link capacity — can beat max-min fair congestion
control on average flow completion time.  Evaluating that claim needs a
flow-level simulator: flows arrive over time carrying a finite size,
receive service at policy-determined rates, and depart when their
remaining size hits zero.

This module provides the engine: a time-ordered event queue plus the
bookkeeping to advance "work done" between events under piecewise-
constant rates.  Policies (how rates are chosen) live in
:mod:`repro.sim.policies`; the driver loop in :mod:`repro.sim.flowsim`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, NamedTuple, Optional, Set, Tuple

from repro.obs import gauge

#: The largest live event count any queue in this process has reached —
#: heap growth under churn, visible in ``repro profile``.  Gauges are
#: no-ops unless ``repro.obs`` is enabled.
_QUEUE_PEAK = gauge("sim.queue_peak")


class Event(NamedTuple):
    """A scheduled occurrence.  Ordering: time, then insertion order."""

    time: float
    sequence: int
    kind: str
    payload: Any


class EventQueue:
    """A stable min-heap of events keyed by time.

    Events may be cancelled by sequence number (:meth:`cancel`); a
    cancelled event stays in the heap as a tombstone and is dropped
    lazily the next time it would surface in :meth:`pop` / :meth:`peek`
    — O(1) cancellation without breaking the heap invariant.  Only
    still-pending sequences may be cancelled (cancelling an already-
    popped sequence would skew the live count).

    >>> q = EventQueue()
    >>> seq = q.push(2.0, "b", None)
    >>> _ = q.push(1.0, "a", None)
    >>> q.cancel(seq)
    >>> q.pop().kind, len(q)
    ('a', 0)
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._cancelled: Set[int] = set()
        self._peak = 0

    def push(self, time: float, kind: str, payload: Any) -> int:
        """Schedule an event at ``time`` (ties broken by insertion
        order); returns the sequence number, usable with :meth:`cancel`.
        """
        if time < 0:
            raise ValueError(f"negative event time: {time}")
        sequence = next(self._counter)
        heapq.heappush(self._heap, Event(time, sequence, kind, payload))
        size = len(self._heap) - len(self._cancelled)
        if size > self._peak:
            self._peak = size
            peak = _QUEUE_PEAK.value
            if peak is None or size > peak:
                _QUEUE_PEAK.set(size)
        return sequence

    def cancel(self, sequence: int) -> None:
        """Mark a pending event dead; it is dropped lazily on pop/peek."""
        self._cancelled.add(sequence)

    def _drop_cancelled(self) -> None:
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0].sequence in cancelled:
            cancelled.discard(heapq.heappop(heap).sequence)

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        self._drop_cancelled()
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest live event without removing it, or ``None``."""
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self._heap) > len(self._cancelled)


def load_failure_schedule(queue: EventQueue, schedule) -> int:
    """Push every event of a failure schedule onto ``queue``.

    ``schedule`` is a :class:`repro.failures.schedule.FailureSchedule`
    (duck-typed: anything with an ``events()`` method yielding objects
    with ``time`` works).  Each event is enqueued with kind
    ``"failure"`` and the original event as payload, so the driver loop
    can replay a recorded failure trace alongside arrivals and
    completions.  Returns the number of events loaded.
    """
    count = 0
    for event in schedule.events():
        queue.push(event.time, "failure", event)
        count += 1
    return count
