"""Flow-level discrete-event simulation (the §7 R1 scheduling study)."""

from repro.sim.events import Event, EventQueue
from repro.sim.flowsim import (
    CompletedJob,
    FCTStats,
    SimulationError,
    SimulationResult,
    average_throughput,
    fct_stats,
    simulate,
)
from repro.sim.jobs import FlowJob, incast_burst, poisson_workload
from repro.sim.policies import (
    MatchingScheduler,
    MaxMinCongestionControl,
    ProcessorSharing,
    ReroutingCongestionControl,
)
from repro.sim.stream import simulate_sharded, simulate_stream

__all__ = [
    "CompletedJob",
    "average_throughput",
    "Event",
    "EventQueue",
    "FCTStats",
    "FlowJob",
    "MatchingScheduler",
    "MaxMinCongestionControl",
    "ProcessorSharing",
    "ReroutingCongestionControl",
    "SimulationError",
    "SimulationResult",
    "fct_stats",
    "incast_burst",
    "poisson_workload",
    "simulate",
    "simulate_sharded",
    "simulate_stream",
]
