"""Service policies: max-min congestion control vs. matching scheduling.

The two regimes the paper contrasts throughout, made operational:

- :class:`MaxMinCongestionControl` — the data-center default (§1): the
  network accepts every active flow, a router pins each to a path on
  arrival, and congestion control imposes the max-min fair rates for
  the current routing (recomputed on every arrival/departure, modeling
  ideal convergence).
- :class:`MatchingScheduler` — the §7 R1 alternative: at every event,
  serve a *maximum matching* of the active flows at full link capacity
  and delay the rest (admission control in time).  Among maximum
  matchings it prefers flows with the least remaining size (an
  SRPT-flavored tie-break), the standard choice for minimizing mean
  completion time.  Matched flows are routed link-disjointly through
  the middle switches via König coloring (Lemma 5.2), so the schedule
  is feasible in the Clos network, not just the macro-switch.

Both policies expose ``rates(active) -> {job_id: rate}``; the driver in
:mod:`repro.sim.flowsim` is policy-agnostic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Protocol

from repro.coloring.konig import edge_coloring
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.graph.bipartite import BipartiteMultigraph
from repro.matching.hopcroft_karp import maximum_matching
from repro.routers.ecmp import ecmp_routing
from repro.sim.jobs import FlowJob


class Policy(Protocol):  # pragma: no cover - structural type only
    """The interface the simulator drives."""

    def rates(
        self,
        active: Mapping[int, FlowJob],
        remaining: Mapping[int, float],
        now: float = 0.0,
    ) -> Dict[int, float]:
        """Service rate per active job id (jobs absent default to 0)."""
        ...


def _job_flow(job: FlowJob) -> Flow:
    """The (stateless) flow identity of a job, tagged by job id."""
    return Flow(job.source, job.dest, tag=job.job_id)


class MaxMinCongestionControl:
    """Water-filling max-min rates over the current routing.

    ``router`` chooses each job's middle switch once, on first sight
    (flow pinning — real networks do not re-route live flows); choices
    are remembered for the job's lifetime.

    ``backend`` selects the float solver: ``"reference"`` (the default,
    :func:`repro.core.maxmin.max_min_fair`), ``"heap"``
    (:func:`repro.core.fastmaxmin.max_min_fair_fast`),
    ``"vectorized"`` (:mod:`repro.core.vectorized`), or ``"streaming"``
    (:class:`repro.core.streaming.StreamingMaxMin`).  The vectorized
    backend compiles the routing to incidence arrays and reuses the
    compilation across events while the active job set (and its pinning)
    is unchanged — only capacity *values* change under link failures,
    which costs one vector rebuild, not a recompile.  The streaming
    backend goes further: it diffs the active set against the previous
    consultation and re-solves only the affected suffix of water-fill
    rounds, so sustained churn costs far less than a solve per event
    (rates stay bit-identical to the vectorized backend).

    ``middle_pool`` optionally restricts ECMP pinning to a subset of
    middle-switch indices — the pod-sharding hook used by
    :func:`repro.sim.stream.simulate_sharded`.  A pool of all middles
    ``(1, …, n)`` is hash-identical to the unrestricted default.
    """

    #: Rates depend only on the active job set, pinning, and capacities —
    #: never on ``remaining`` or ``now`` — so the simulator may skip
    #: re-solving events that change none of those.
    pure_rates = True

    def __init__(
        self,
        network: ClosNetwork,
        router: str = "ecmp",
        seed: int = 0,
        backend: str = "reference",
        middle_pool=None,
    ):
        if backend not in ("reference", "heap", "vectorized", "streaming"):
            raise ValueError(
                f"unknown float backend {backend!r}; expected "
                "'reference', 'heap', 'vectorized', or 'streaming'"
            )
        self.network = network
        self.router = router
        self.seed = seed
        self.backend = backend
        self.middle_pool = (
            None if middle_pool is None else tuple(middle_pool)
        )
        if self.middle_pool is not None:
            bad = [
                m
                for m in self.middle_pool
                if not 1 <= m <= network.num_middles
            ]
            if bad or not self.middle_pool:
                raise ValueError(
                    f"middle_pool must be non-empty indices in "
                    f"1..{network.num_middles}, got {middle_pool!r}"
                )
        self._pinned: Dict[int, int] = {}  # job id -> middle switch
        self._capacities = network.graph.capacities()
        self._caps_version = 0
        # Vectorized-backend compilation cache: valid while the
        # (job id, middle) assignment set is unchanged.
        self._compiled = None
        self._compiled_key = None
        self._compiled_caps_version = None
        self._caps_vector = None
        # Streaming-backend state: the incremental solver plus the job
        # set it currently tracks, diffed against each consultation.
        self._stream = None
        self._stream_jobs: Dict[int, Flow] = {}
        self._stream_caps_version = 0

    def set_link_factors(self, factors) -> None:
        """Apply a failure state: link → retained-capacity fraction.

        Called by the simulator when replaying a
        :class:`repro.failures.schedule.FailureSchedule`; subsequent
        ``rates`` computations water-fill over the degraded fabric.
        Flows stay pinned to their paths (the pre-reroute window).
        """
        from repro.failures.inject import degrade_links

        self._capacities = degrade_links(
            self.network.graph.capacities(), factors
        )
        self._caps_version += 1

    def _pin(self, active: Mapping[int, FlowJob]) -> None:
        unpinned = [job for jid, job in active.items() if jid not in self._pinned]
        if not unpinned:
            return
        if self.router == "ecmp" and self.middle_pool is not None:
            # Pool-restricted ECMP: hash into the pool directly.  With a
            # full pool ``(1, …, n)`` this reproduces ecmp_routing's
            # ``(hash % n) + 1`` choice bit-for-bit.
            from repro.routers.ecmp import _flow_hash

            pool = self.middle_pool
            for job in unpinned:
                digest = _flow_hash(_job_flow(job), self.seed)
                self._pinned[job.job_id] = pool[digest % len(pool)]
        elif self.router == "ecmp":
            # Same middle ecmp_routing would pick — its choice is a pure
            # per-flow hash, so pin from the digest directly instead of
            # materializing a FlowCollection + Routing (full Path
            # objects) just to read the middle indices back out.
            from repro.routers.ecmp import _ECMP_DECISIONS, _flow_hash

            num_middles = self.network.num_middles
            for job in unpinned:
                digest = _flow_hash(_job_flow(job), self.seed)
                self._pinned[job.job_id] = (digest % num_middles) + 1
            _ECMP_DECISIONS.inc(len(unpinned))
        elif self.router == "least_loaded":
            # pin to the middle currently carrying the fewest pinned jobs
            load = {m: 0 for m in range(1, self.network.n + 1)}
            for m in self._pinned.values():
                if m in load:
                    load[m] += 1
            for job in sorted(unpinned, key=lambda j: j.job_id):
                m = min(load, key=lambda key: (load[key], key))
                self._pinned[job.job_id] = m
                load[m] += 1
        else:
            raise ValueError(f"unknown router: {self.router!r}")

    def rates(
        self,
        active: Mapping[int, FlowJob],
        remaining: Mapping[int, float],
        now: float = 0.0,
    ) -> Dict[int, float]:
        if not active:
            return {}
        self._pin(active)
        if self.backend == "vectorized":
            return self._rates_vectorized(active)
        if self.backend == "streaming":
            return self._rates_streaming(active)
        flows = FlowCollection(_job_flow(job) for job in active.values())
        middles = {
            _job_flow(job): self._pinned[jid] for jid, job in active.items()
        }
        routing = Routing.from_middles(self.network, flows, middles)
        if self.backend == "heap":
            from repro.core.fastmaxmin import max_min_fair_fast

            alloc = max_min_fair_fast(routing, self._capacities)
        else:
            alloc = max_min_fair(routing, self._capacities, exact=False)
        return {job.tag: alloc.rate(job) for job in flows}

    def _rates_vectorized(self, active: Mapping[int, FlowJob]) -> Dict[int, float]:
        """Vectorized solve with incidence reuse across events.

        The compiled incidence depends only on which jobs are active and
        where they are pinned; an event that only changes capacities
        (failure batches) or job *sizes* reuses it wholesale.
        """
        from repro.core import vectorized as _vz

        key = tuple(sorted((jid, self._pinned[jid]) for jid in active))
        recompile = self._compiled is None or self._compiled_key != key
        if (
            not recompile
            and self._compiled_caps_version != self._caps_version
            and _vz.incidence_stale(self._compiled, self._capacities)
        ):
            # A failure event changed capacity *values* without changing
            # the active set, which normally reuses the incidence — but
            # if the change flipped a traversed link between finite and
            # infinite, the compiled finite-link membership is stale and
            # water-filling over it would silently mis-allocate.
            recompile = True
        if recompile:
            flows = FlowCollection(_job_flow(job) for job in active.values())
            middles = {
                _job_flow(job): self._pinned[jid]
                for jid, job in active.items()
            }
            routing = Routing.from_middles(self.network, flows, middles)
            self._compiled = _vz.compile_routing(routing, self._capacities)
            self._compiled_key = key
            self._compiled_caps_version = None
        if self._compiled_caps_version != self._caps_version:
            self._caps_vector = _vz.capacity_vector(
                self._compiled, self._capacities
            )
            self._compiled_caps_version = self._caps_version
        rates = _vz.waterfill(self._compiled, self._caps_vector)
        return {
            flow.tag: float(rate)
            for flow, rate in zip(self._compiled.flows, rates)
        }

    def _rates_streaming(self, active: Mapping[int, FlowJob]) -> Dict[int, float]:
        """Incremental solve: diff the active set, patch, re-solve the
        affected suffix of water-fill rounds.

        Rates are bit-identical to :meth:`_rates_vectorized` (the
        streaming solver replays the exact float operation sequence of a
        from-scratch vectorized solve), so the two backends produce
        byte-identical :class:`~repro.sim.flowsim.SimulationResult`\\ s.
        """
        from repro.core.streaming import StreamingMaxMin

        if self._stream is None:
            self._stream = StreamingMaxMin(self._capacities)
            self._stream_jobs = {}
            self._stream_caps_version = self._caps_version
        elif self._stream_caps_version != self._caps_version:
            self._stream.set_capacities(self._capacities)
            self._stream_caps_version = self._caps_version
        stream, tracked = self._stream, self._stream_jobs
        for jid in [jid for jid in tracked if jid not in active]:
            stream.remove(tracked.pop(jid))
        for jid, job in active.items():
            if jid not in tracked:
                flow = _job_flow(job)
                path = self.network.path_via(
                    job.source, job.dest, self._pinned[jid]
                )
                stream.add(flow, path)
                tracked[jid] = flow
        return {
            flow.tag: rate for flow, rate in stream.solve().items()
        }

    def forget(self, job_id: int) -> None:
        """Drop routing state for a completed job."""
        self._pinned.pop(job_id, None)


class MatchingScheduler:
    """Serve a maximum matching at rate 1; delay everything else.

    Preference order inside the matching computation: least remaining
    size first.  A maximum matching over that order is found by seeding
    Hopcroft–Karp's result and is served at unit rate on link-disjoint
    paths (König), which the Clos network always admits (Lemma 5.2).
    """

    def __init__(self, network: ClosNetwork, srpt: bool = True):
        self.network = network
        self.srpt = srpt
        # SRPT order consults job sizes, so rates can change even when
        # link membership does not; only the FIFO variant is pure.
        self.pure_rates = not srpt

    def rates(
        self,
        active: Mapping[int, FlowJob],
        remaining: Mapping[int, float],
        now: float = 0.0,
    ) -> Dict[int, float]:
        if not active:
            return {}
        order: List[FlowJob] = list(active.values())
        if self.srpt:
            order.sort(key=lambda job: (remaining[job.job_id], job.job_id))
        else:
            order.sort(key=lambda job: job.job_id)

        # Greedy matching in preference order, then augment to maximum
        # while keeping the greedy seed where possible: build the
        # multigraph in preference order — our Hopcroft–Karp breaks
        # parallel-edge ties toward earlier insertion, and the greedy
        # seed below handles the priority part.
        taken_sources, taken_dests = set(), set()
        matched_ids = []
        for job in order:
            if job.source in taken_sources or job.dest in taken_dests:
                continue
            taken_sources.add(job.source)
            taken_dests.add(job.dest)
            matched_ids.append(job.job_id)

        # Grow to a maximum matching over the leftovers (priority greedy
        # can be sub-maximum); re-run matching on the full graph and keep
        # whichever serves more jobs, preferring the greedy seed on ties.
        graph = BipartiteMultigraph()
        for job in order:
            graph.add_edge(job.source, job.dest, key=job.job_id)
        full = maximum_matching(graph)
        if len(full) > len(matched_ids):
            matched_ids = list(full)

        return {jid: 1.0 for jid in matched_ids}

    def forget(self, job_id: int) -> None:
        """Stateless; present for interface symmetry."""


class ProcessorSharing:
    """A macro-switch-oblivious baseline: every active job gets an equal
    share of its destination link only (classic per-destination processor
    sharing).  Ignores source contention — useful as a sanity baseline
    that the max-min policy must dominate in fairness terms."""

    #: Rates depend only on the active job set.
    pure_rates = True

    def __init__(self, network: ClosNetwork):
        self.network = network

    def rates(
        self,
        active: Mapping[int, FlowJob],
        remaining: Mapping[int, float],
        now: float = 0.0,
    ) -> Dict[int, float]:
        per_dest: Dict = {}
        for job in active.values():
            per_dest.setdefault(job.dest, []).append(job.job_id)
        rates: Dict[int, float] = {}
        for jobs in per_dest.values():
            share = 1.0 / len(jobs)
            for jid in jobs:
                rates[jid] = share
        return rates

    def forget(self, job_id: int) -> None:
        """Stateless."""


class ReroutingCongestionControl:
    """Hedera-style periodic re-routing on top of max-min congestion control.

    Like :class:`MaxMinCongestionControl`, rates are the max-min fair
    allocation of the current routing — but every ``interval`` time
    units the controller re-runs the greedy least-congested router over
    *all* active flows (using their macro-switch rates as demands),
    un-pinning everything.  Between re-route epochs, newly arrived flows
    are pinned by ECMP hash, exactly as Hedera lets the default ECMP
    place flows until the scheduler's next pass (the paper's §6
    "data-center routing algorithms" family, in time).
    """

    #: Re-route epochs make rates depend on ``now``; never skippable.
    pure_rates = False

    def __init__(
        self, network: ClosNetwork, interval: float = 1.0, seed: int = 0
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.network = network
        self.interval = interval
        self.seed = seed
        self._pinned: Dict[int, int] = {}
        self._next_reroute = 0.0
        self._capacities = network.graph.capacities()

    def set_link_factors(self, factors) -> None:
        """Apply a failure state: link → retained-capacity fraction.

        Unlike pure congestion control, the next re-route epoch then
        routes *around* the degraded links via the resilient wrapper.
        """
        from repro.failures.inject import degrade_links

        self._capacities = degrade_links(
            self.network.graph.capacities(), factors
        )

    def _ecmp_pin(self, jobs) -> None:
        flows = FlowCollection(_job_flow(job) for job in jobs)
        routing = ecmp_routing(self.network, flows, seed=self.seed)
        for job in jobs:
            middle = routing.middle_of(self.network, _job_flow(job))
            self._pinned[job.job_id] = middle.index

    def _global_reroute(self, active: Mapping[int, FlowJob]) -> None:
        from repro.failures.resilient import route_with_failures

        flows = FlowCollection(_job_flow(job) for job in active.values())
        result = route_with_failures(self.network, flows, self._capacities)
        middles = result.routing.middles(self.network)
        self._pinned = {}
        for job in active.values():
            flow = _job_flow(job)
            if flow in middles:
                self._pinned[job.job_id] = middles[flow]
            else:
                # Disconnected by failures: park the flow on middle 1 at
                # whatever rate the dead links yield (zero) until the
                # fabric recovers, rather than dropping it silently.
                self._pinned[job.job_id] = 1

    def rates(
        self,
        active: Mapping[int, FlowJob],
        remaining: Mapping[int, float],
        now: float = 0.0,
    ) -> Dict[int, float]:
        if not active:
            return {}
        if now >= self._next_reroute:
            self._global_reroute(active)
            self._next_reroute = now + self.interval
        else:
            unpinned = [
                job for jid, job in active.items() if jid not in self._pinned
            ]
            if unpinned:
                self._ecmp_pin(unpinned)
        flows = FlowCollection(_job_flow(job) for job in active.values())
        middles = {
            _job_flow(job): self._pinned[jid] for jid, job in active.items()
        }
        routing = Routing.from_middles(self.network, flows, middles)
        alloc = max_min_fair(routing, self._capacities, exact=False)
        return {job.tag: alloc.rate(job) for job in flows}

    def next_wakeup(self, now: float):
        """Ask the simulator to re-consult us at the next re-route epoch."""
        return self._next_reroute if self._next_reroute > now else None

    def forget(self, job_id: int) -> None:
        """Drop routing state for a completed job."""
        self._pinned.pop(job_id, None)
