"""Array-state simulation engines (the ``engine="array"`` fast core).

The object engines in :mod:`repro.sim.flowsim` and
:mod:`repro.sim.stream` keep per-job Python dicts plus a ``heapq``
completion heap; under heavy churn the end-to-end event rate stalls on
that bookkeeping — not on solving.  This module re-implements both
event loops over a contiguous slot store (remaining sizes, rates, job
ids, and the active mask as NumPy arrays):

- time advancement serves every active job with one masked vector
  update instead of a Python loop;
- the next completion comes from a masked ``remaining / rate`` minimum
  (per-event engine) or a single ``lexsort`` per policy consult (stream
  engine: rates only change at consult boundaries, so the completion
  *order* is frozen between them and each pop is an O(1) pointer walk
  instead of an O(log F) heap operation);
- retirement frees slots lazily and sweeps them with a batched
  compaction only when more than half the store is dead, like
  ``core/streaming``'s O(nnz) dead-slot sweep.

Both engines are event-for-event mirrors of their object counterparts:
``completed`` (order *and* float values), ``unfinished``, and
``end_time`` are byte-identical, including ``_TIME_EPS`` tie-breaking,
same-instant burst admission, failure batching, and admission-order
retirement.  Only ``work_done`` may drift within :data:`WORK_TOL`,
because vectorized reductions sum partial service in a different order
than the object engines' per-job accumulation (see
:func:`results_equivalent`).

:func:`resolve_engine` implements the ``{"auto", "object", "array"}``
switch used by :func:`repro.sim.flowsim.simulate` and friends;
:func:`with_shadow` implements the sampled ``REPRO_SHADOW``
cross-check that re-runs the object engine on a pre-run deep copy of
the policy and quarantines divergences with reason ``sim-mismatch``.
"""

from __future__ import annotations

import copy
import math
from collections.abc import Mapping
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import BackendUnavailableError
from repro.obs import counter, histogram
from repro.sim.events import EventQueue, load_failure_schedule
from repro.sim.flowsim import (
    _TIME_EPS,
    CompletedJob,
    SimulationError,
    SimulationResult,
)
from repro.sim.jobs import FlowJob

#: Engine names accepted by ``simulate(..., engine=)`` and the CLI.
ENGINES = ("auto", "object", "array")

#: ``engine="auto"`` picks the array core at or above this many jobs;
#: below it the object engines win on constant factors (array setup and
#: rate scatter cost more than a handful of dict updates).
AUTO_THRESHOLD = 64

#: Relative tolerance on ``work_done`` between engines: vectorized
#: reductions sum partial service in a different order than the object
#: engines' per-job accumulation, so the totals agree only to float
#: round-off.  ``completed`` / ``unfinished`` / ``end_time`` are exact.
WORK_TOL = 1e-9

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
#: Counter names are shared with the object engines so per-engine runs
#: report into the same telemetry streams.
_EVENTS = counter("sim.events")
_COMPLETIONS = counter("sim.completions")
_FAILURES = counter("sim.failures_applied")
_POLICY_CALLS = counter("sim.policy_consultations")
_RESOLVE_SKIPS = counter("sim.resolve_skipped")
_ACTIVE = histogram("sim.active_jobs")
_BATCH = histogram("sim.batch_size")
_SHADOW_CHECKS = counter("sim.shadow.checks")
_SHADOW_MISMATCHES = counter("sim.shadow.mismatches")

__all__ = [
    "AUTO_THRESHOLD",
    "ENGINES",
    "WORK_TOL",
    "resolve_engine",
    "results_equivalent",
]


def _numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - image bakes numpy in
        return None
    return numpy


def resolve_engine(engine: str, num_jobs: int) -> str:
    """Resolve an ``engine=`` argument to ``"object"`` or ``"array"``.

    ``"auto"`` picks the array core when NumPy is importable and the
    workload has at least :data:`AUTO_THRESHOLD` jobs; ``"array"``
    raises :class:`~repro.errors.BackendUnavailableError` without NumPy
    rather than silently falling back.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "object":
        return "object"
    np = _numpy()
    if engine == "array":
        if np is None:
            raise BackendUnavailableError(
                "engine 'array' requires numpy; use engine='object'"
            )
        return "array"
    if np is not None and num_jobs >= AUTO_THRESHOLD:
        return "array"
    return "object"


def results_equivalent(
    a: SimulationResult, b: SimulationResult, work_tol: float = WORK_TOL
) -> bool:
    """Whether two engine results agree under the cross-engine contract:
    ``completed`` / ``unfinished`` / ``end_time`` exactly equal,
    ``work_done`` within relative ``work_tol`` (summation-order drift)."""
    if a.completed != b.completed:
        return False
    if a.unfinished != b.unfinished:
        return False
    if a.end_time != b.end_time:
        return False
    scale = max(1.0, abs(a.work_done), abs(b.work_done))
    return abs(a.work_done - b.work_done) <= work_tol * scale


# ----------------------------------------------------------------------
# The slot store
# ----------------------------------------------------------------------
class _JobStore:
    """Contiguous per-job state: ``remaining`` / ``rate`` / ``jid``
    arrays and an ``active`` mask over slots ``[0, high)``.

    Slots are handed out in admission order and compaction preserves
    relative order, so **ascending slot index is admission order** —
    the invariant behind byte-identical retirement ordering (the object
    engines retire in remaining-dict insertion order, which is the same
    thing).
    """

    __slots__ = ("np", "remaining", "rate", "jid", "active", "high", "slot_of")

    def __init__(self, np_mod, capacity_hint: int) -> None:
        self.np = np_mod
        cap = max(16, int(capacity_hint))
        self.remaining = np_mod.zeros(cap)
        self.rate = np_mod.zeros(cap)
        self.jid = np_mod.zeros(cap, dtype=np_mod.int64)
        self.active = np_mod.zeros(cap, dtype=bool)
        #: One past the last slot ever used (only compaction shrinks it).
        self.high = 0
        #: job_id -> slot for live jobs, in admission order.
        self.slot_of: Dict[int, int] = {}

    def _grow(self) -> None:
        np = self.np
        cap = 2 * len(self.remaining)
        for name in ("remaining", "rate", "jid", "active"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: self.high] = old[: self.high]
            setattr(self, name, new)

    def admit(self, job: FlowJob) -> int:
        if self.high == len(self.remaining):
            self._grow()
        slot = self.high
        self.high = slot + 1
        self.remaining[slot] = job.size
        self.rate[slot] = 0.0
        self.jid[slot] = job.job_id
        self.active[slot] = True
        self.slot_of[job.job_id] = slot
        return slot

    def retire(self, slot: int) -> None:
        self.active[slot] = False
        del self.slot_of[int(self.jid[slot])]

    def compact(self) -> None:
        """Sweep dead slots once more than half the store is dead.

        Only called at consult boundaries, where rates are re-scattered
        and any cached completion order is rebuilt anyway — so moving
        slots never invalidates in-flight references.
        """
        live = len(self.slot_of)
        if self.high < 64 or 2 * live >= self.high:
            return
        np = self.np
        keep = np.nonzero(self.active[: self.high])[0]
        n = int(keep.size)
        # Fancy indexing copies before assigning, so in-place shifts
        # toward the front are safe.
        self.remaining[:n] = self.remaining[keep]
        self.rate[:n] = self.rate[keep]
        self.jid[:n] = self.jid[keep]
        self.active[:n] = True
        self.active[n : self.high] = False
        self.high = n
        self.slot_of = {
            int(j): i for i, j in enumerate(self.jid[:n].tolist())
        }


class _RemainingView(Mapping):
    """Read-only ``{job_id: remaining}`` over the live slots, iterated
    in admission order — handed to policies in place of the object
    engines' remaining dict (e.g. ``MatchingScheduler``'s SRPT key)."""

    __slots__ = ("_store",)

    def __init__(self, store: _JobStore) -> None:
        self._store = store

    def __getitem__(self, jid: int) -> float:
        return float(self._store.remaining[self._store.slot_of[jid]])

    def __iter__(self) -> Iterator[int]:
        return iter(self._store.slot_of)

    def __len__(self) -> int:
        return len(self._store.slot_of)

    def __contains__(self, jid: object) -> bool:
        return jid in self._store.slot_of


# ----------------------------------------------------------------------
# Per-event engine (mirror of flowsim._simulate)
# ----------------------------------------------------------------------
def _simulate_array(
    jobs: Sequence[FlowJob],
    policy,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
) -> SimulationResult:
    """Array-state mirror of :func:`repro.sim.flowsim._simulate`."""
    np = _numpy()
    queue = EventQueue()
    for job in jobs:
        queue.push(job.arrival, "arrival", job)
    if failure_schedule is not None:
        if not hasattr(policy, "set_link_factors"):
            raise SimulationError(
                f"{type(policy).__name__} has no set_link_factors hook and "
                "cannot replay a failure schedule"
            )
        load_failure_schedule(queue, failure_schedule)
    link_factors: Dict = {}

    store = _JobStore(np, len(jobs))
    remaining_view = _RemainingView(store)
    active: Dict[int, FlowJob] = {}
    completed: List[CompletedJob] = []
    work_done = 0.0
    now = 0.0
    events = 0

    def served_slots():
        hi = store.high
        return np.nonzero(store.active[:hi] & (store.rate[:hi] > 0.0))[0]

    def drain_until(target: float) -> float:
        """Advance the clock to ``target`` at the standing rates,
        stopping early at the soonest completion (vector masked min —
        the same value the object engine's running min produces)."""
        nonlocal now, work_done
        idx = served_slots()
        soonest: Optional[float] = None
        if idx.size:
            soonest = float(
                (now + store.remaining[idx] / store.rate[idx]).min()
            )
        stop = target if soonest is None else min(target, soonest)
        dt = stop - now
        if dt < 0:
            raise SimulationError(f"time went backwards: {now} -> {stop}")
        if idx.size:
            served = store.rate[idx] * dt
            store.remaining[idx] = np.maximum(
                0.0, store.remaining[idx] - served
            )
            work_done += float(served.sum())
        now = stop
        return stop

    def complete_finished() -> bool:
        """Retire drained jobs in admission (= ascending slot) order;
        returns whether any retirement was solver-visible."""
        hi = store.high
        fin = np.nonzero(
            store.active[:hi] & (store.remaining[:hi] <= _TIME_EPS)
        )[0]
        _COMPLETIONS.inc(int(fin.size))
        visible = bool((store.rate[fin] > 0.0).any())
        for slot in fin.tolist():
            job = active.pop(int(store.jid[slot]))
            store.retire(slot)
            policy.forget(job.job_id)
            duration = now - job.arrival
            completed.append(
                CompletedJob(
                    job=job,
                    completion_time=now,
                    duration=duration,
                    slowdown=duration / job.size if job.size > 0 else 1.0,
                )
            )
        return visible

    def scatter(rates: Dict[int, float]) -> None:
        store.rate[: store.high] = 0.0
        slot_of = store.slot_of
        rate = store.rate
        for jid, r in rates.items():
            slot = slot_of.get(jid)
            if slot is not None:
                rate[slot] = r

    pending_arrivals = len(jobs)
    pure = bool(getattr(policy, "pure_rates", False))
    needs_resolve = True
    while queue or active:
        if not active and pending_arrivals == 0:
            break  # only failure events remain; nothing left to serve
        events += 1
        _EVENTS.inc()
        _ACTIVE.observe(len(active))
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")
        if max_time is not None and now >= max_time:
            break

        hook = getattr(policy, "next_wakeup", None)
        if pure and hook is None and not needs_resolve:
            _RESOLVE_SKIPS.inc()
        else:
            _POLICY_CALLS.inc()
            store.compact()
            scatter(policy.rates(active, remaining_view, now))
            needs_resolve = False
        wakeup: Optional[float] = None
        if hook is not None and active:
            candidate = hook(now)
            if candidate is not None and candidate > now + _TIME_EPS:
                wakeup = candidate

        next_event = queue.peek()
        if next_event is None:
            if wakeup is None and not served_slots().size:
                raise SimulationError(
                    f"{len(active)} jobs active but none served; "
                    "the policy starved the residual workload"
                )
            horizon = math.inf if max_time is None else max_time
            if wakeup is not None:
                horizon = min(horizon, wakeup)
            drain_until(horizon)
            if complete_finished():
                needs_resolve = True
            continue

        target = next_event.time
        if wakeup is not None:
            target = min(target, wakeup)
        reached = drain_until(target)
        if complete_finished():
            needs_resolve = True
            continue  # re-consult the policy before touching the arrival
        if reached >= next_event.time - _TIME_EPS:
            event = queue.pop()
            if event.kind == "failure":
                link_factors[event.payload.link] = event.payload.factor
                _FAILURES.inc()
                while queue:
                    upcoming = queue.peek()
                    if (
                        upcoming.kind != "failure"
                        or upcoming.time > event.time + _TIME_EPS
                    ):
                        break
                    failure = queue.pop().payload
                    link_factors[failure.link] = failure.factor
                    _FAILURES.inc()
                policy.set_link_factors(dict(link_factors))
                needs_resolve = True
                continue
            job = event.payload
            active[job.job_id] = job
            store.admit(job)
            pending_arrivals -= 1
            needs_resolve = True
            burst = 1
            while pure and queue:
                upcoming = queue.peek()
                if (
                    upcoming.kind != "arrival"
                    or upcoming.time > event.time + _TIME_EPS
                ):
                    break
                job = queue.pop().payload
                active[job.job_id] = job
                store.admit(job)
                pending_arrivals -= 1
                burst += 1
            _BATCH.observe(burst)

    return SimulationResult(
        completed=completed,
        unfinished=list(active.values()),
        work_done=work_done,
        end_time=now,
    )


# ----------------------------------------------------------------------
# Micro-batching engine (mirror of stream._simulate_stream)
# ----------------------------------------------------------------------
def _simulate_stream_array(
    jobs: Sequence[FlowJob],
    policy,
    batch_window: float,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
) -> SimulationResult:
    """Array-state mirror of :func:`repro.sim.stream._simulate_stream`.

    Replaces the event heap with two presorted pointer walks (arrivals
    stably sorted by arrival time, failures by schedule time — exactly
    the ``(time, sequence)`` order of the object engine's
    :class:`~repro.sim.events.EventQueue`, arrivals winning time ties
    because they are pushed first) and the completion heap with a
    per-consult ``lexsort`` by ``(finish, job_id)`` — the same total
    order as the heap's ``(finish, jid, epoch)`` entries, all of which
    share the latest epoch.
    """
    np = _numpy()
    for job in jobs:
        if job.arrival < 0:
            raise ValueError(f"negative event time: {job.arrival}")
    fail_events: List = []
    if failure_schedule is not None:
        if not hasattr(policy, "set_link_factors"):
            raise SimulationError(
                f"{type(policy).__name__} has no set_link_factors hook and "
                "cannot replay a failure schedule"
            )
        fail_events = sorted(failure_schedule.events(), key=lambda e: e.time)
        for ev in fail_events:
            if ev.time < 0:
                raise ValueError(f"negative event time: {ev.time}")
    n_jobs = len(jobs)
    arr_jobs = sorted(jobs, key=lambda job: job.arrival)  # stable
    arr_times = [job.arrival for job in arr_jobs]
    fail_times = [ev.time for ev in fail_events]
    n_fail = len(fail_events)

    store = _JobStore(np, n_jobs)
    remaining_view = _RemainingView(store)
    active: Dict[int, FlowJob] = {}
    completed: List[CompletedJob] = []
    link_factors: Dict = {}
    work_done = 0.0
    now = 0.0
    base_t = 0.0
    events = 0
    aptr = 0
    fptr = 0
    #: Completion order under the standing rates — slots and finish
    #: times sorted by ``(finish, job_id)``, consumed by ``optr``.
    order_slots: List[int] = []
    order_finish: List[float] = []
    optr = 0
    deadline: Optional[float] = None
    pending = 0

    def advance_to(target: float) -> None:
        """Serve every job at its standing rate up to ``target``."""
        nonlocal base_t, work_done
        dt = target - base_t
        if dt < -_TIME_EPS:
            raise SimulationError(
                f"time went backwards: {base_t} -> {target}"
            )
        if dt > 0.0:
            hi = store.high
            idx = np.nonzero(store.active[:hi] & (store.rate[:hi] > 0.0))[0]
            if idx.size:
                served = np.minimum(
                    store.remaining[idx], store.rate[idx] * dt
                )
                store.remaining[idx] -= served
                work_done += float(served.sum())
        base_t = target

    def retire(slot: int, at: float, served: float) -> None:
        nonlocal work_done
        job = active.pop(int(store.jid[slot]))
        store.retire(slot)
        work_done += served
        policy.forget(job.job_id)
        duration = at - job.arrival
        completed.append(
            CompletedJob(
                job=job,
                completion_time=at,
                duration=duration,
                slowdown=duration / job.size if job.size > 0 else 1.0,
            )
        )
        _COMPLETIONS.inc()

    def retire_jobless(job: FlowJob, at: float) -> None:
        """Zero-size transfer: completes the instant it arrives without
        ever occupying a slot — matching the object loop's retire."""
        active.pop(job.job_id)
        policy.forget(job.job_id)
        duration = at - job.arrival
        completed.append(
            CompletedJob(
                job=job,
                completion_time=at,
                duration=duration,
                slowdown=duration / job.size if job.size > 0 else 1.0,
            )
        )
        _COMPLETIONS.inc()

    def boundary_retire(at: float) -> None:
        """Retire anything drained to zero exactly at a boundary, in
        admission (= ascending slot) order."""
        hi = store.high
        done = np.nonzero(
            store.active[:hi] & (store.remaining[:hi] <= _TIME_EPS)
        )[0]
        for slot in done.tolist():
            retire(slot, at, 0.0)

    def consult(at: float) -> None:
        """The batch boundary: advance, re-solve, refreeze the
        completion order."""
        nonlocal deadline, pending, order_slots, order_finish, optr
        advance_to(at)
        boundary_retire(at)
        _POLICY_CALLS.inc()
        _BATCH.observe(max(1, pending))
        store.compact()
        rates = policy.rates(active, remaining_view, at)
        pending = 0
        deadline = None
        store.rate[: store.high] = 0.0
        slot_of = store.slot_of
        rate = store.rate
        for jid, r in rates.items():
            slot = slot_of.get(jid)
            if slot is not None:
                rate[slot] = r
        hi = store.high
        cand = np.nonzero(store.active[:hi] & (store.rate[:hi] > 0.0))[0]
        if cand.size:
            finish = at + store.remaining[cand] / store.rate[cand]
            sort = np.lexsort((store.jid[cand], finish))
            order_slots = cand[sort].tolist()
            order_finish = finish[sort].tolist()
        else:
            order_slots = []
            order_finish = []
        optr = 0

    def touch(at: float) -> None:
        """Register one solver-visible change at time ``at``."""
        nonlocal deadline, pending
        pending += 1
        candidate = at + batch_window
        if deadline is None or candidate < deadline:
            deadline = candidate

    while aptr < n_jobs or fptr < n_fail or active:
        if not active and aptr >= n_jobs:
            break  # only failure events remain; nothing left to serve
        events += 1
        _EVENTS.inc()
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")
        if max_time is not None and now >= max_time:
            break

        next_completion = (
            order_finish[optr] if optr < len(order_finish) else None
        )
        arr_t = arr_times[aptr] if aptr < n_jobs else None
        fail_t = fail_times[fptr] if fptr < n_fail else None
        if arr_t is not None and (fail_t is None or arr_t <= fail_t):
            next_event_t: Optional[float] = arr_t
            next_is_arrival = True
        else:
            next_event_t = fail_t
            next_is_arrival = False
        next_t = math.inf if max_time is None else max_time
        if next_event_t is not None:
            next_t = min(next_t, next_event_t)
        if next_completion is not None:
            next_t = min(next_t, next_completion)
        if deadline is not None:
            next_t = min(next_t, deadline)
        if math.isinf(next_t):
            raise SimulationError(
                f"{len(active)} jobs active but none served; "
                "the policy starved the residual workload"
            )
        if max_time is not None and next_t > max_time:
            next_t = max_time
        now = next_t
        if max_time is not None and now >= max_time:
            break

        if next_completion is not None and next_completion <= now + _TIME_EPS:
            slot = order_slots[optr]
            finish = order_finish[optr]
            optr += 1
            if store.active[slot]:
                # The job's full residual (as of base_t) was served over
                # [base_t, finish]; account it directly and leave the
                # others' lazily advanced state untouched.
                served = float(store.remaining[slot])
                retire(slot, finish, served)
                touch(finish)  # freed capacity -> re-solve within window
            continue

        if next_event_t is not None and next_event_t <= now + _TIME_EPS:
            if not next_is_arrival:
                ev = fail_events[fptr]
                fptr += 1
                link_factors[ev.link] = ev.factor
                _FAILURES.inc()
                while fptr < n_fail:
                    upcoming_t = fail_times[fptr]
                    if upcoming_t > next_event_t + _TIME_EPS:
                        break
                    if aptr < n_jobs and arr_times[aptr] <= upcoming_t:
                        break  # an arrival precedes it in queue order
                    nxt = fail_events[fptr]
                    fptr += 1
                    link_factors[nxt.link] = nxt.factor
                    _FAILURES.inc()
                policy.set_link_factors(dict(link_factors))
                touch(next_event_t)
                continue
            job = arr_jobs[aptr]
            aptr += 1
            if job.size <= _TIME_EPS:
                active[job.job_id] = job
                retire_jobless(job, next_event_t)
                continue
            active[job.job_id] = job
            store.admit(job)
            touch(next_event_t)
            continue

        # The batch deadline is the earliest happening: re-solve.
        consult(now)

    advance_to(now)
    boundary_retire(now)
    return SimulationResult(
        completed=completed,
        unfinished=list(active.values()),
        work_done=work_done,
        end_time=now,
    )


# ----------------------------------------------------------------------
# REPRO_SHADOW cross-check
# ----------------------------------------------------------------------
def _shadow_due() -> bool:
    from repro.core.solve import _shadow_interval

    interval = _shadow_interval()
    if not interval:
        return False
    return next(_SIM_SEQ) % interval == 0


def _divergence(got: SimulationResult, want: SimulationResult) -> List[str]:
    """Human-readable defect lines for a quarantine bundle."""
    details: List[str] = []
    if len(got.completed) != len(want.completed):
        details.append(
            f"completed count {len(got.completed)} != {len(want.completed)}"
        )
    else:
        for i, (g, w) in enumerate(zip(got.completed, want.completed)):
            if g != w:
                details.append(
                    f"completed[{i}]: array {g!r} != object {w!r}"
                )
                break
    if got.unfinished != want.unfinished:
        details.append(
            f"unfinished {len(got.unfinished)} jobs != "
            f"{len(want.unfinished)} jobs (or differing order)"
        )
    if got.end_time != want.end_time:
        details.append(f"end_time {got.end_time!r} != {want.end_time!r}")
    scale = max(1.0, abs(got.work_done), abs(want.work_done))
    if abs(got.work_done - want.work_done) > WORK_TOL * scale:
        details.append(
            f"work_done {got.work_done!r} != {want.work_done!r} "
            f"(beyond {WORK_TOL} relative)"
        )
    return details or ["results differ"]


def _quarantine_mismatch(
    policy, got: SimulationResult, want: SimulationResult, context: str
) -> None:
    """Best-effort ``sim-mismatch`` bundle capture (never raises)."""
    try:
        from repro.core.routing import Routing
        from repro.quarantine import quarantine_failure

        capacities = dict(getattr(policy, "_capacities", None) or {})
        quarantine_failure(
            Routing({}),
            capacities,
            reason="sim-mismatch",
            backend="array",
            exact=False,
            context=context,
            failures=_divergence(got, want),
        )
    except Exception:  # pragma: no cover - quarantine must not mask
        pass


def with_shadow(array_run, object_run, policy, context: str):
    """Run the array engine; on ``REPRO_SHADOW``-sampled runs re-run the
    object engine and cross-check.

    ``array_run()`` executes the fast core against ``policy``;
    ``object_run(reference_policy)`` re-runs the object engine against a
    deep copy of the policy taken *before* the array run mutated it.
    Divergent results are quarantined with reason ``sim-mismatch`` and
    the object result — the established engine — is returned.  Policies
    that cannot be deep-copied skip the check silently (sampling, not a
    guarantee).
    """
    reference_policy = None
    if object_run is not None and _shadow_due():
        try:
            reference_policy = copy.deepcopy(policy)
        except Exception:
            reference_policy = None
    result = array_run()
    if reference_policy is None:
        return result
    _SHADOW_CHECKS.inc()
    expected = object_run(reference_policy)
    if results_equivalent(result, expected):
        return result
    _SHADOW_MISMATCHES.inc()
    _quarantine_mismatch(policy, result, expected, context)
    return expected


def _make_sim_seq():
    from repro.core.solve import _ProcessSeq

    return _ProcessSeq()


#: Monotone per-process sequence of array-engine runs, driving shadow
#: sampling (pid-salted like the solver's, so forked shard workers
#: sample different ordinals).
_SIM_SEQ = _make_sim_seq()
