"""Finite-size flow jobs and their arrival processes.

A :class:`FlowJob` wraps a (source, destination) pair with an arrival
time and a size (the amount of data to transfer, in capacity·time
units: a size-1 job served at the full unit link rate finishes in one
time unit).  :func:`poisson_workload` draws a reproducible open-loop
arrival sequence — the standard setup for flow-completion-time studies.
"""

from __future__ import annotations

import math
import random
from typing import List, NamedTuple, Optional, Sequence

from repro.core.nodes import Destination, Source
from repro.core.topology import ClosNetwork


class FlowJob(NamedTuple):
    """A finite transfer: who, when, and how much."""

    job_id: int
    source: Source
    dest: Destination
    arrival: float
    size: float


def poisson_workload(
    network: ClosNetwork,
    rate: float,
    horizon: float,
    mean_size: float = 1.0,
    size_distribution: str = "exponential",
    seed: int = 0,
) -> List[FlowJob]:
    """An open-loop Poisson arrival sequence with random endpoints.

    ``rate`` is the mean number of arrivals per time unit; arrivals stop
    at ``horizon`` (jobs in flight may finish after it).  Sizes are drawn
    from ``size_distribution``:

    - ``"exponential"`` — mean ``mean_size`` (memoryless, the classic
      baseline);
    - ``"fixed"`` — every job exactly ``mean_size``;
    - ``"bimodal"`` — mice (90% of jobs, size ``mean_size/10``) and
      elephants (10%, sized to preserve the mean), the canonical
      heavy-tailed data-center mix.

    >>> clos = ClosNetwork(2)
    >>> jobs = poisson_workload(clos, rate=2.0, horizon=10.0, seed=1)
    >>> all(jobs[i].arrival <= jobs[i + 1].arrival for i in range(len(jobs) - 1))
    True
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if mean_size <= 0:
        raise ValueError(f"mean size must be positive, got {mean_size}")
    rng = random.Random(seed)
    jobs: List[FlowJob] = []
    time = 0.0
    job_id = 0
    while True:
        time += rng.expovariate(rate)
        if time > horizon:
            break
        jobs.append(
            FlowJob(
                job_id=job_id,
                source=rng.choice(network.sources),
                dest=rng.choice(network.destinations),
                arrival=time,
                size=_draw_size(rng, mean_size, size_distribution),
            )
        )
        job_id += 1
    return jobs


def _draw_size(rng: random.Random, mean_size: float, distribution: str) -> float:
    if distribution == "exponential":
        return rng.expovariate(1.0 / mean_size)
    if distribution == "fixed":
        return mean_size
    if distribution == "bimodal":
        # 90% mice at mean/10; elephants sized so the mix preserves the mean:
        # 0.9 (m/10) + 0.1 e = m  =>  e = 9.1 m.
        if rng.random() < 0.9:
            return mean_size / 10.0
        return 9.1 * mean_size
    raise ValueError(f"unknown size distribution: {distribution!r}")


def incast_burst(
    network: ClosNetwork,
    fan_in: int,
    size: float = 1.0,
    arrival: float = 0.0,
    seed: int = 0,
) -> List[FlowJob]:
    """``fan_in`` equal-size jobs arriving simultaneously at one destination.

    The worst case for fairness-based service: every job gets 1/fan_in of
    the destination link, so *all* of them finish at time
    ``fan_in · size`` — whereas serving them one at a time finishes the
    i-th at ``i · size``, halving the mean completion time.
    """
    rng = random.Random(seed)
    dest = rng.choice(network.destinations)
    sources = rng.sample(network.sources, fan_in)
    return [
        FlowJob(job_id=i, source=s, dest=dest, arrival=arrival, size=size)
        for i, s in enumerate(sources)
    ]
