"""Finite-size flow jobs and their arrival processes.

A :class:`FlowJob` wraps a (source, destination) pair with an arrival
time and a size (the amount of data to transfer, in capacity·time
units: a size-1 job served at the full unit link rate finishes in one
time unit).  :func:`poisson_workload` draws a reproducible open-loop
arrival sequence — the standard setup for flow-completion-time studies.
"""

from __future__ import annotations

import math
import random
from typing import List, NamedTuple, Optional, Sequence

from repro.core.nodes import Destination, Source
from repro.core.topology import ClosNetwork


class FlowJob(NamedTuple):
    """A finite transfer: who, when, and how much."""

    job_id: int
    source: Source
    dest: Destination
    arrival: float
    size: float


def poisson_workload(
    network: ClosNetwork,
    rate: float,
    horizon: float,
    mean_size: float = 1.0,
    size_distribution: str = "exponential",
    seed: int = 0,
) -> List[FlowJob]:
    """An open-loop Poisson arrival sequence with random endpoints.

    ``rate`` is the mean number of arrivals per time unit; arrivals stop
    at ``horizon`` (jobs in flight may finish after it).  Sizes are drawn
    from ``size_distribution``:

    - ``"exponential"`` — mean ``mean_size`` (memoryless, the classic
      baseline);
    - ``"fixed"`` — every job exactly ``mean_size``;
    - ``"bimodal"`` — mice (90% of jobs, size ``mean_size/10``) and
      elephants (10%, sized to preserve the mean), the canonical
      heavy-tailed data-center mix.

    >>> clos = ClosNetwork(2)
    >>> jobs = poisson_workload(clos, rate=2.0, horizon=10.0, seed=1)
    >>> all(jobs[i].arrival <= jobs[i + 1].arrival for i in range(len(jobs) - 1))
    True
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if mean_size <= 0:
        raise ValueError(f"mean size must be positive, got {mean_size}")
    rng = random.Random(seed)
    jobs: List[FlowJob] = []
    time = 0.0
    job_id = 0
    while True:
        time += rng.expovariate(rate)
        if time > horizon:
            break
        jobs.append(
            FlowJob(
                job_id=job_id,
                source=rng.choice(network.sources),
                dest=rng.choice(network.destinations),
                arrival=time,
                size=_draw_size(rng, mean_size, size_distribution),
            )
        )
        job_id += 1
    return jobs


def _draw_size(rng: random.Random, mean_size: float, distribution: str) -> float:
    if distribution == "exponential":
        return rng.expovariate(1.0 / mean_size)
    if distribution == "fixed":
        return mean_size
    if distribution == "bimodal":
        # 90% mice at mean/10; elephants sized so the mix preserves the mean:
        # 0.9 (m/10) + 0.1 e = m  =>  e = 9.1 m.
        if rng.random() < 0.9:
            return mean_size / 10.0
        return 9.1 * mean_size
    raise ValueError(f"unknown size distribution: {distribution!r}")


def incast_burst(
    network: ClosNetwork,
    fan_in: int,
    size: float = 1.0,
    arrival: float = 0.0,
    seed: int = 0,
) -> List[FlowJob]:
    """``fan_in`` equal-size jobs arriving simultaneously at one destination.

    The worst case for fairness-based service: every job gets 1/fan_in of
    the destination link, so *all* of them finish at time
    ``fan_in · size`` — whereas serving them one at a time finishes the
    i-th at ``i · size``, halving the mean completion time.
    """
    rng = random.Random(seed)
    dest = rng.choice(network.destinations)
    sources = rng.sample(network.sources, fan_in)
    return [
        FlowJob(job_id=i, source=s, dest=dest, arrival=arrival, size=size)
        for i, s in enumerate(sources)
    ]


# ----------------------------------------------------------------------
# Column-array transport (for zero-copy shard dispatch)
# ----------------------------------------------------------------------
#: Column order of the packed job arrays: five int64 identity columns
#: and two float64 payload columns per job.
JOB_COLUMNS = (
    "job_id", "src_switch", "src_server", "dst_switch", "dst_server",
    "arrival", "size",
)


def jobs_to_arrays(jobs: Sequence[FlowJob]):
    """Pack jobs into named column arrays (see :data:`JOB_COLUMNS`).

    The columns capture a job exactly — :func:`jobs_from_arrays` round-
    trips to equal ``FlowJob`` tuples — so shard workers can rebuild
    their slice from a :class:`repro.parallel.SharedArrays` block
    without any job object crossing the process pipe.
    """
    import numpy as np

    n = len(jobs)
    return {
        "job_id": np.fromiter(
            (job.job_id for job in jobs), dtype=np.int64, count=n
        ),
        "src_switch": np.fromiter(
            (job.source.switch for job in jobs), dtype=np.int64, count=n
        ),
        "src_server": np.fromiter(
            (job.source.server for job in jobs), dtype=np.int64, count=n
        ),
        "dst_switch": np.fromiter(
            (job.dest.switch for job in jobs), dtype=np.int64, count=n
        ),
        "dst_server": np.fromiter(
            (job.dest.server for job in jobs), dtype=np.int64, count=n
        ),
        "arrival": np.fromiter(
            (job.arrival for job in jobs), dtype=np.float64, count=n
        ),
        "size": np.fromiter(
            (job.size for job in jobs), dtype=np.float64, count=n
        ),
    }


def jobs_from_arrays(
    job_id, src_switch, src_server, dst_switch, dst_server, arrival, size
) -> List[FlowJob]:
    """Rebuild :func:`jobs_to_arrays` columns into ``FlowJob`` tuples."""
    return [
        FlowJob(
            job_id=int(jid),
            source=Source(int(ssw), int(ssv)),
            dest=Destination(int(dsw), int(dsv)),
            arrival=float(at),
            size=float(sz),
        )
        for jid, ssw, ssv, dsw, dsv, at, sz in zip(
            job_id.tolist(), src_switch.tolist(), src_server.tolist(),
            dst_switch.tolist(), dst_server.tolist(),
            arrival.tolist(), size.tolist(),
        )
    ]
