"""The flow-level simulation driver.

Advances time between *events* (job arrivals and completions) under
piecewise-constant rates chosen by a policy, and records per-job
completion times.  The policy is re-consulted at every event that can
change the allocation — the fluid idealization in which congestion
control converges instantly, which is the regime the paper's rate model
(§2.2) describes.  Events that provably change no link membership or
capacity (a job finishing at rate zero) reuse the standing rates of a
policy declaring ``pure_rates``, counted by the ``sim.resolve_skipped``
observability counter; same-instant arrival bursts are admitted in one
batch and cost a single re-solve.

The driver is exact for piecewise-constant rates: between events every
active job's remaining size decreases linearly, and the next completion
is the minimum of ``remaining / rate`` over jobs with positive rate.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.obs import counter, histogram, trace_span
from repro.sim.events import EventQueue, load_failure_schedule
from repro.sim.jobs import FlowJob

#: Completion-time comparisons tolerate this much float drift.
_TIME_EPS = 1e-9

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_RUNS = counter("sim.runs")
_EVENTS = counter("sim.events")
_COMPLETIONS = counter("sim.completions")
_FAILURES = counter("sim.failures_applied")
_POLICY_CALLS = counter("sim.policy_consultations")
_RESOLVE_SKIPS = counter("sim.resolve_skipped")
#: Active-job count observed at every event: the p50/p90/p99 summary
#: shows whether a workload's cost comes from sustained load or bursts
#: (integer observations — exact percentiles, tiny bucket map).
_ACTIVE = histogram("sim.active_jobs")
#: Solver-visible events admitted per policy re-solve: same-instant
#: arrival bursts here, micro-batch windows in ``repro.sim.stream``.
#: A p50 of 1 means per-event solving; higher means batching is paying.
_BATCH = histogram("sim.batch_size")


class CompletedJob(NamedTuple):
    """A finished transfer with its timing statistics."""

    job: FlowJob
    completion_time: float
    #: completion_time − arrival (the flow completion time, FCT).
    duration: float
    #: duration / size — 1.0 means the job ran at full link rate
    #: throughout (sizes are in capacity·time units).
    slowdown: float


class SimulationResult(NamedTuple):
    """Everything a run produces."""

    completed: List[CompletedJob]
    #: Jobs still unfinished when the simulation hit ``max_time``.
    unfinished: List[FlowJob]
    #: Total data delivered (sum of completed sizes + partial service).
    work_done: float
    #: The time the last event was processed.
    end_time: float


class SimulationError(RuntimeError):
    """Raised when the run cannot make progress (e.g. starved forever)."""


def simulate(
    jobs: Sequence[FlowJob],
    policy,
    max_time: Optional[float] = None,
    max_events: int = 1_000_000,
    failure_schedule=None,
    engine: str = "auto",
) -> SimulationResult:
    """Run ``jobs`` under ``policy`` until everything finishes.

    ``policy`` follows :class:`repro.sim.policies.Policy`: a ``rates``
    method mapping active job ids to service rates, and a ``forget``
    hook called when a job completes.  ``max_time`` bounds the simulated
    clock (jobs still active are reported as unfinished);``max_events``
    bounds the event count as a runaway guard.

    ``failure_schedule`` replays a
    :class:`repro.failures.schedule.FailureSchedule` through the run:
    at each failure event the accumulated link factors are handed to
    ``policy.set_link_factors`` and the policy is re-consulted, so rates
    respond to the fabric degrading and recovering mid-flight.  Policies
    without that hook cannot honor a schedule — passing one raises
    :class:`SimulationError` rather than silently simulating a healthy
    fabric.

    ``engine`` selects the event-loop implementation: ``"object"`` is
    the per-job dict loop below, ``"array"`` the NumPy slot store in
    :mod:`repro.sim.arraysim` (identical ``completed`` / ``unfinished``
    / ``end_time``; ``work_done`` within float round-off), ``"auto"``
    picks the array core for workloads of at least
    :data:`~repro.sim.arraysim.AUTO_THRESHOLD` jobs when NumPy is
    available.  Setting ``REPRO_SHADOW`` cross-checks sampled array
    runs against the object engine and quarantines divergences with
    reason ``sim-mismatch``.

    >>> from repro.core.topology import ClosNetwork
    >>> from repro.sim.policies import MaxMinCongestionControl
    >>> from repro.sim.jobs import FlowJob
    >>> clos = ClosNetwork(1)
    >>> job = FlowJob(0, clos.source(1, 1), clos.destination(2, 1), 0.0, 2.0)
    >>> result = simulate([job], MaxMinCongestionControl(clos))
    >>> result.completed[0].duration  # size 2 at rate 1
    2.0
    """
    from repro.sim import arraysim

    chosen = arraysim.resolve_engine(engine, len(jobs))
    _RUNS.inc()
    with trace_span("sim.simulate", jobs=len(jobs), engine=chosen) as span:
        if chosen == "array":
            result = arraysim.with_shadow(
                lambda: arraysim._simulate_array(
                    jobs, policy, max_time, max_events, failure_schedule
                ),
                lambda ref: _simulate(
                    jobs, ref, max_time, max_events, failure_schedule
                ),
                policy,
                context="sim.simulate",
            )
        else:
            result = _simulate(
                jobs, policy, max_time, max_events, failure_schedule
            )
        span.set(
            completed=len(result.completed),
            unfinished=len(result.unfinished),
            sim_end_time=result.end_time,
        )
    return result


def _simulate(
    jobs: Sequence[FlowJob],
    policy,
    max_time: Optional[float],
    max_events: int,
    failure_schedule,
) -> SimulationResult:
    """The event loop behind :func:`simulate` (same contract)."""
    queue = EventQueue()
    for job in jobs:
        queue.push(job.arrival, "arrival", job)
    if failure_schedule is not None:
        if not hasattr(policy, "set_link_factors"):
            raise SimulationError(
                f"{type(policy).__name__} has no set_link_factors hook and "
                "cannot replay a failure schedule"
            )
        load_failure_schedule(queue, failure_schedule)
    #: link -> retained-capacity factor currently in force
    link_factors: Dict = {}

    active: Dict[int, FlowJob] = {}
    remaining: Dict[int, float] = {}
    completed: List[CompletedJob] = []
    work_done = 0.0
    now = 0.0
    events = 0

    def drain_until(target: float, rates: Dict[int, float]) -> float:
        """Advance the clock to ``target`` applying ``rates``; returns
        actual time reached (may stop early at a completion)."""
        nonlocal now, work_done
        # earliest completion under these rates
        soonest: Optional[float] = None
        for jid, rate in rates.items():
            if rate > 0 and jid in remaining:
                finish = now + remaining[jid] / rate
                if soonest is None or finish < soonest:
                    soonest = finish
        stop = target if soonest is None else min(target, soonest)
        dt = stop - now
        if dt < 0:
            raise SimulationError(f"time went backwards: {now} -> {stop}")
        for jid, rate in rates.items():
            if jid in remaining and rate > 0:
                served = rate * dt
                remaining[jid] = max(0.0, remaining[jid] - served)
                work_done += served
        now = stop
        return stop

    def complete_finished(rates: Dict[int, float]) -> bool:
        """Retire every active job whose remaining size reached zero.

        Returns whether any retirement is *solver-visible*: retiring a
        job that was being served at a positive rate frees capacity and
        changes the other jobs' fair shares, so the policy must be
        re-consulted.  A job that finishes while its rate is zero (its
        path fully degraded, or a zero-size arrival) leaves every
        other job's allocation untouched — the caller may keep the
        current rates.
        """
        finished = [
            jid for jid, left in remaining.items() if left <= _TIME_EPS
        ]
        _COMPLETIONS.inc(len(finished))
        visible = False
        for jid in finished:
            if rates.get(jid, 0.0) > 0:
                visible = True
            job = active.pop(jid)
            del remaining[jid]
            policy.forget(jid)
            duration = now - job.arrival
            completed.append(
                CompletedJob(
                    job=job,
                    completion_time=now,
                    duration=duration,
                    slowdown=duration / job.size if job.size > 0 else 1.0,
                )
            )
        return visible

    pending_arrivals = len(jobs)
    # A policy declaring `pure_rates` computes rates from the active job
    # set and capacities alone, so its last answer stays valid until an
    # event actually changes link membership or capacities.  Events that
    # change neither (a job finishing at rate zero) skip the re-solve.
    pure = bool(getattr(policy, "pure_rates", False))
    needs_resolve = True
    rates: Dict[int, float] = {}
    while queue or active:
        if not active and pending_arrivals == 0:
            break  # only failure events remain; nothing left to serve
        events += 1
        _EVENTS.inc()
        _ACTIVE.observe(len(active))
        if events > max_events:
            raise SimulationError(f"exceeded {max_events} events")
        if max_time is not None and now >= max_time:
            break

        hook = getattr(policy, "next_wakeup", None)
        if pure and hook is None and not needs_resolve:
            _RESOLVE_SKIPS.inc()
        else:
            _POLICY_CALLS.inc()
            rates = policy.rates(active, remaining, now)
            needs_resolve = False
        # Policies may request re-consultation at a future instant (e.g.
        # periodic re-routing) via an optional `next_wakeup(now)` hook.
        wakeup: Optional[float] = None
        if hook is not None and active:
            candidate = hook(now)
            if candidate is not None and candidate > now + _TIME_EPS:
                wakeup = candidate

        next_event = queue.peek()
        if next_event is None:
            # only completions remain; if nobody is being served and no
            # wakeup is pending the system can never finish
            if wakeup is None and not any(
                rate > 0 for jid, rate in rates.items() if jid in remaining
            ):
                raise SimulationError(
                    f"{len(active)} jobs active but none served; "
                    "the policy starved the residual workload"
                )
            horizon = math.inf if max_time is None else max_time
            if wakeup is not None:
                horizon = min(horizon, wakeup)
            drain_until(horizon, rates)
            if complete_finished(rates):
                needs_resolve = True
            continue

        target = next_event.time
        if wakeup is not None:
            target = min(target, wakeup)
        reached = drain_until(target, rates)
        if complete_finished(rates):
            needs_resolve = True
            continue  # re-consult the policy before touching the arrival
        if reached >= next_event.time - _TIME_EPS:
            event = queue.pop()
            if event.kind == "failure":
                # Apply every failure landing at this instant in one go,
                # then re-consult the policy on the degraded fabric.
                link_factors[event.payload.link] = event.payload.factor
                _FAILURES.inc()
                while queue:
                    upcoming = queue.peek()
                    if (
                        upcoming.kind != "failure"
                        or upcoming.time > event.time + _TIME_EPS
                    ):
                        break
                    failure = queue.pop().payload
                    link_factors[failure.link] = failure.factor
                    _FAILURES.inc()
                policy.set_link_factors(dict(link_factors))
                needs_resolve = True
                continue
            # Admit the arrival — and, for pure-rates policies, every
            # other arrival landing at the same instant: no time passes
            # between them and the rates depend only on the final set,
            # so a burst costs one re-solve instead of one per job.
            # (Impure policies may consume state per consultation — e.g.
            # a re-route epoch — so they keep the per-arrival cadence.)
            job = event.payload
            active[job.job_id] = job
            remaining[job.job_id] = job.size
            pending_arrivals -= 1
            needs_resolve = True
            burst = 1
            while pure and queue:
                upcoming = queue.peek()
                if (
                    upcoming.kind != "arrival"
                    or upcoming.time > event.time + _TIME_EPS
                ):
                    break
                job = queue.pop().payload
                active[job.job_id] = job
                remaining[job.job_id] = job.size
                pending_arrivals -= 1
                burst += 1
            _BATCH.observe(burst)

    return SimulationResult(
        completed=completed,
        unfinished=list(active.values()),
        work_done=work_done,
        end_time=now,
    )


class FCTStats(NamedTuple):
    """Summary statistics over completed jobs."""

    count: int
    mean_fct: float
    median_fct: float
    p99_fct: float
    mean_slowdown: float
    max_slowdown: float


def fct_stats(result: SimulationResult) -> FCTStats:
    """Flow-completion-time summary of a run (requires ≥ 1 completion)."""
    if not result.completed:
        raise ValueError("no completed jobs to summarize")
    durations = sorted(c.duration for c in result.completed)
    slowdowns = [c.slowdown for c in result.completed]
    count = len(durations)
    return FCTStats(
        count=count,
        mean_fct=sum(durations) / count,
        median_fct=durations[count // 2],
        p99_fct=durations[min(count - 1, math.ceil(0.99 * count) - 1)],
        mean_slowdown=sum(slowdowns) / count,
        max_slowdown=max(slowdowns),
    )


def average_throughput(result: SimulationResult) -> float:
    """Time-averaged network throughput: work delivered / makespan.

    The §7 R1 discussion predicts scheduling raises the *average
    throughput across the network over time* relative to max-min
    congestion control; since both regimes deliver the same total work,
    a shorter makespan is exactly a higher average throughput.
    """
    if result.end_time <= 0:
        raise ValueError("simulation processed no time")
    return result.work_done / result.end_time
