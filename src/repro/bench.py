"""Micro-benchmark suite and regression gate (``repro bench``).

Runs the repo's kernel scenarios — water-filling (exact, float,
heap-accelerated), the routers, local search, and the flow simulator —
under :mod:`repro.obs` tracing and reports best/median wall time per
scenario plus the solver counters that explain the cost (water-filling
rounds, heap pops, router decisions, simulator events).

Two modes:

- **collect** (``repro bench -o BENCH_pr.json``): write a results
  document in the same format as the committed ``BENCH_baseline.json``.
- **gate** (``repro bench --against BENCH_baseline.json``): compare
  against a baseline and *fail* (exit 1) when any scenario's median
  wall time regresses by more than ``--tolerance`` (default 25%).
  Speedups are reported alongside, so "made the hot path faster" is a
  measured claim — and the counters prove the work didn't change
  (same rounds, fewer seconds).

Each scenario record also carries a per-span timing breakdown
(self/cumulative seconds per span name, from the final repeat), which
``repro bench diff A.json B.json`` uses to *attribute* wall-clock
deltas: instead of "vectorized_waterfill regressed 18%", the diff says
which spans' self time account for the movement.

``benchmarks/collect.py`` is a thin wrapper over this module kept for
the documented ``python benchmarks/collect.py`` invocation.
"""

from __future__ import annotations

import platform
import statistics
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.core.maxmin import max_min_fair
from repro.core.fastmaxmin import max_min_fair_fast
from repro.core.topology import ClosNetwork
from repro.io.serialize import write_json_atomic
from repro.routers.ecmp import ecmp_routing
from repro.routers.greedy import greedy_least_congested
from repro.routers.two_choice import two_choice_routing
from repro.runner import git_sha
from repro.search.local_search import improve_routing
from repro.sim.flowsim import simulate
from repro.sim.jobs import poisson_workload
from repro.sim.policies import MaxMinCongestionControl
from repro.workloads.stochastic import permutation, uniform_random

FORMAT_NAME = "repro-bench"
FORMAT_VERSION = 1

__all__ = [
    "SCENARIOS",
    "bench_command",
    "collect",
    "compare",
    "diff_attribution",
    "diff_command",
    "format_attribution",
    "format_comparison",
]


def _big_instance():
    clos = ClosNetwork(8)
    flows = uniform_random(clos, 400, seed=0)
    return clos, flows


#: Shared inputs for the backend-comparison scenarios, built once — the
#: scenarios time *solver* work, not instance construction, so the
#: ``vectorized_waterfill`` / ``water_filling_fast_xl`` pair differs only
#: in the kernel (the vectorized side reuses its compiled incidence, the
#: way the flow simulator holds it across events).
_SOLVER_CACHE: Dict[str, Any] = {}


def _xl_instance():
    """A dense instance: 4000 flows over the 72 links of ``Clos(3)``."""
    if "xl" not in _SOLVER_CACHE:
        clos = ClosNetwork(3)
        flows = uniform_random(clos, 4000, seed=0)
        routing = ecmp_routing(clos, flows)
        _SOLVER_CACHE["xl"] = (routing, clos.graph.capacities())
    return _SOLVER_CACHE["xl"]


def _xl_compiled():
    if "xl_compiled" not in _SOLVER_CACHE:
        from repro.core.vectorized import capacity_vector, compile_routing

        routing, caps = _xl_instance()
        compiled = compile_routing(routing, caps)
        _SOLVER_CACHE["xl_compiled"] = (
            compiled, capacity_vector(compiled, caps)
        )
    return _SOLVER_CACHE["xl_compiled"]


def _quotient_instance():
    """The Theorem 4.3 construction at n = 16 (4337 flows)."""
    if "quotient" not in _SOLVER_CACHE:
        from repro.workloads.adversarial import lemma_4_6_routing, theorem_4_3

        instance = theorem_4_3(16)
        routing = lemma_4_6_routing(instance)
        _SOLVER_CACHE["quotient"] = (
            routing, instance.clos.graph.capacities()
        )
    return _SOLVER_CACHE["quotient"]


def scenario_example_2_3() -> None:
    from repro.experiments.example_2_3 import run

    run()


def scenario_water_filling_exact() -> None:
    clos, flows = _big_instance()
    routing = ecmp_routing(clos, flows)
    max_min_fair(routing, clos.graph.capacities(), exact=True)


def scenario_water_filling_float() -> None:
    clos, flows = _big_instance()
    routing = ecmp_routing(clos, flows)
    max_min_fair(routing, clos.graph.capacities(), exact=False)


def scenario_water_filling_fast() -> None:
    clos, flows = _big_instance()
    routing = ecmp_routing(clos, flows)
    max_min_fair_fast(routing, clos.graph.capacities())


def scenario_greedy_router() -> None:
    clos, flows = _big_instance()
    greedy_least_congested(clos, flows)


def scenario_two_choice_router() -> None:
    clos, flows = _big_instance()
    two_choice_routing(clos, flows, seed=0)


def scenario_local_search() -> None:
    clos = ClosNetwork(2)
    flows = permutation(clos, seed=3)
    improve_routing(clos, ecmp_routing(clos, flows), objective="lex")


def scenario_flow_simulation() -> None:
    clos = ClosNetwork(3)
    jobs = poisson_workload(clos, rate=2.0, horizon=20.0, seed=0)
    simulate(jobs, MaxMinCongestionControl(clos))


def scenario_water_filling_fast_xl() -> None:
    routing, caps = _xl_instance()
    max_min_fair_fast(routing, caps)


def scenario_vectorized_waterfill() -> None:
    from repro.core.vectorized import waterfill

    compiled, caps_vector = _xl_compiled()
    waterfill(compiled, caps_vector)


def scenario_quotient_exact() -> None:
    from repro.core.quotient import quotient_max_min

    routing, caps = _quotient_instance()
    quotient_max_min(routing, caps)


def _churn_sequence():
    """A shared n=64 Poisson churn event stream (pinned paths), built
    once — both churn scenarios absorb the *same* sequence, so their
    events/sec (``bench.churn.events`` / wall) compare like for like."""
    if "churn" not in _SOLVER_CACHE:
        import gc

        from repro.experiments.churn import churn_event_sequence

        clos = ClosNetwork(64)
        _SOLVER_CACHE["churn"] = (
            clos.graph.capacities(),
            churn_event_sequence(clos, rate=100000.0, horizon=0.5, seed=0),
        )
        # ~100k cached event tuples would otherwise sit in the young GC
        # generations and tax every later scenario's collections (a
        # measured ~20% drag on vectorized_waterfill); they live for
        # the whole bench run, so freeze them out of the GC entirely.
        gc.collect()
        gc.freeze()
    return _SOLVER_CACHE["churn"]


def scenario_flowsim_churn_event() -> None:
    """The classic loop: a from-scratch solve after every flow event
    (a 192-event prefix — the whole sequence would take minutes, which
    is the point)."""
    from repro.experiments.churn import absorb_churn

    caps, events = _churn_sequence()
    absorb_churn(caps, events, per_event=True, limit=192)


def _batch_instances():
    """128 independent small scenarios (the E4/E5-sweep workload shape):
    ``Clos(3)`` with 60 seeded-random flows each, ECMP-routed.  The
    cache holds the ``(routing, capacities)`` pairs *and* the compiled
    block-diagonal batch, so the two ``batched_sweep*`` scenarios time
    the water-fill alone — same instances, same compiled incidences,
    one stacked vs. 128 per-instance kernel invocations."""
    if "batch" not in _SOLVER_CACHE:
        from repro.core.batched import compile_batch
        from repro.core.vectorized import capacity_vector, compile_routing

        clos = ClosNetwork(3)
        caps = clos.graph.capacities()
        pairs = []
        for seed in range(128):
            flows = uniform_random(clos, 60, seed=seed)
            pairs.append((ecmp_routing(clos, flows, seed=seed), caps))
        compiled_parts = []
        for routing, capacities in pairs:
            compiled = compile_routing(routing, capacities)
            compiled_parts.append(
                (compiled, capacity_vector(compiled, capacities))
            )
        _SOLVER_CACHE["batch"] = (pairs, compile_batch(pairs), compiled_parts)
    return _SOLVER_CACHE["batch"]


def scenario_batched_sweep() -> None:
    """All 128 scenarios in one block-diagonal batched water-fill."""
    from repro.core.batched import waterfill_batch

    _, batch, _ = _batch_instances()
    waterfill_batch(batch)


def scenario_batched_sweep_perinstance() -> None:
    """The same 128 scenarios solved by 128 per-instance vectorized
    water-fills (the pre-batching dispatch this PR replaces)."""
    from repro.core.vectorized import waterfill

    _, _, compiled_parts = _batch_instances()
    for compiled, caps_vector in compiled_parts:
        waterfill(compiled, caps_vector)


def _des_workload(key: str, **kwargs):
    """A cached churn workload for the end-to-end DES scenarios."""
    if key not in _SOLVER_CACHE:
        from repro.workloads.stochastic import churn_workload

        n = kwargs.pop("n")
        clos = ClosNetwork(n)
        _SOLVER_CACHE[key] = (clos, churn_workload(clos, **kwargs))
    return _SOLVER_CACHE[key]


def _count_flow_events(jobs, result) -> None:
    from repro.obs import counter

    counter("bench.flowsim.events").inc(len(jobs) + len(result.completed))


def scenario_flowsim_churn_batched() -> None:
    """The tentpole: the *end-to-end* discrete-event simulator — Poisson
    arrivals through completion, micro-batched consults — on the array
    engine.  ~5k jobs / ~10k flow events on ``Clos(8)``; events/sec is
    ``bench.flowsim.events`` over wall.  (Before PR 10 this scenario
    timed the allocation service alone; the recorded baseline is the
    bar the full simulator now has to clear at ≥3×.)"""
    from repro.sim.policies import MaxMinCongestionControl
    from repro.sim.stream import simulate_stream

    clos, jobs = _des_workload(
        "des", n=8, rate=10000.0, horizon=0.5, mean_size=0.001, seed=0
    )
    policy = MaxMinCongestionControl(clos, backend="streaming")
    result = simulate_stream(jobs, policy, batch_window=0.02, engine="array")
    _count_flow_events(jobs, result)


def scenario_flowsim_array_engine() -> None:
    """The per-event loop (one solver consult per flow event) on the
    array engine — gates ``simulate(engine="array")`` itself, the
    configuration the ``auto`` selector picks for large workloads."""
    from repro.sim.flowsim import simulate
    from repro.sim.policies import MaxMinCongestionControl

    clos, jobs = _des_workload(
        "des_perevent", n=4, rate=250.0, horizon=1.0, mean_size=0.01, seed=0
    )
    policy = MaxMinCongestionControl(clos, backend="streaming")
    result = simulate(jobs, policy, engine="array")
    _count_flow_events(jobs, result)


def scenario_flowsim_sharded_parallel() -> None:
    """The same end-to-end loop pod-sharded across 4 worker processes
    (``simulate_sharded(jobs=4)`` over shared memory) — wall includes
    worker spawn, so this gates the parallel dispatch path, not just
    the kernel."""
    from repro.sim.stream import simulate_sharded

    clos, workload = _des_workload(
        "des_pods", n=8, rate=10000.0, horizon=0.5, mean_size=0.001,
        pods=8, seed=0,
    )
    result = simulate_sharded(
        clos, workload, pods=8, batch_window=0.02, engine="array", jobs=4
    )
    _count_flow_events(workload, result)


SCENARIOS: Dict[str, Callable[[], None]] = {
    "example_2_3": scenario_example_2_3,
    "water_filling_exact": scenario_water_filling_exact,
    "water_filling_float": scenario_water_filling_float,
    "water_filling_fast": scenario_water_filling_fast,
    "greedy_router": scenario_greedy_router,
    "two_choice_router": scenario_two_choice_router,
    "local_search": scenario_local_search,
    "flow_simulation": scenario_flow_simulation,
    "water_filling_fast_xl": scenario_water_filling_fast_xl,
    "quotient_exact": scenario_quotient_exact,
}

try:  # The vectorized kernel benches only where numpy is available.
    import numpy as _numpy  # noqa: F401
except ImportError:  # pragma: no cover
    pass
else:
    SCENARIOS["vectorized_waterfill"] = scenario_vectorized_waterfill
    SCENARIOS["flowsim_churn_event"] = scenario_flowsim_churn_event
    SCENARIOS["flowsim_churn_batched"] = scenario_flowsim_churn_batched
    SCENARIOS["flowsim_array_engine"] = scenario_flowsim_array_engine
    SCENARIOS["flowsim_sharded_parallel"] = scenario_flowsim_sharded_parallel
    SCENARIOS["batched_sweep"] = scenario_batched_sweep
    SCENARIOS["batched_sweep_perinstance"] = scenario_batched_sweep_perinstance


def collect(repeat: int = 3) -> Dict[str, Any]:
    """Run every scenario ``repeat`` times; return the results document.

    Wall times are measured with tracing on but memory tracking off
    (tracemalloc would distort allocation-heavy kernels); counters and
    the per-span breakdown come from the final run — they are identical
    across runs since every scenario is deterministic (span *times*
    jitter, but the diff tooling compares medians and shares, not raw
    nanoseconds).
    """
    from repro.obs.export import aggregate_spans

    was_enabled = obs.enabled()
    obs.enable(memory=False)
    results: Dict[str, Any] = {}
    try:
        for name, scenario in SCENARIOS.items():
            walls: List[float] = []
            snapshot: Dict[str, Any] = {}
            span_table: Dict[str, Any] = {}
            for _ in range(repeat):
                obs.reset()
                start = time.perf_counter()
                with obs.trace_span(f"bench:{name}"):
                    scenario()
                walls.append(time.perf_counter() - start)
                snapshot = obs.metrics_snapshot()
                span_table = aggregate_spans(obs.tracer().collect())
            results[name] = {
                "wall_s_best": round(min(walls), 6),
                "wall_s_median": round(statistics.median(walls), 6),
                "repeat": repeat,
                "metrics": snapshot,
                "spans": {
                    span: {
                        "count": entry["count"],
                        "cum_s": round(entry["cum_s"], 6),
                        "self_s": round(entry["self_s"], 6),
                    }
                    for span, entry in sorted(span_table.items())
                },
            }
            print(
                f"{name}: best {results[name]['wall_s_best']}s "
                f"median {results[name]['wall_s_median']}s",
                file=sys.stderr,
            )
    finally:
        obs.reset()
        if not was_enabled:
            obs.disable()

    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": results,
    }


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> List[Dict[str, Any]]:
    """Per-scenario median comparison of ``current`` against ``baseline``.

    Returns one row per scenario present in either document with keys
    ``scenario``, ``baseline_s``, ``current_s``, ``speedup`` (baseline /
    current; > 1 is faster), and ``regressed`` (current median more than
    ``tolerance`` slower than baseline).  Scenarios missing on one side
    are reported with ``None`` medians and never flagged as regressed.
    """
    base = baseline.get("scenarios", {})
    curr = current.get("scenarios", {})
    rows: List[Dict[str, Any]] = []
    for name in list(base) + [n for n in curr if n not in base]:
        base_median = base.get(name, {}).get("wall_s_median")
        curr_median = curr.get(name, {}).get("wall_s_median")
        speedup = None
        regressed = False
        if base_median and curr_median:
            speedup = base_median / curr_median
            regressed = curr_median > base_median * (1.0 + tolerance)
        rows.append(
            {
                "scenario": name,
                "baseline_s": base_median,
                "current_s": curr_median,
                "speedup": speedup,
                "regressed": regressed,
            }
        )
    return rows


def format_comparison(rows: List[Dict[str, Any]], tolerance: float) -> str:
    """A printable table of :func:`compare` rows."""
    from repro.analysis import format_table

    def fmt(value: Optional[float], pattern: str) -> str:
        return "-" if value is None else pattern.format(value)

    return format_table(
        ["scenario", "baseline", "current", "speedup", "status"],
        [
            [
                row["scenario"],
                fmt(row["baseline_s"], "{:.4f}s"),
                fmt(row["current_s"], "{:.4f}s"),
                fmt(row["speedup"], "{:.2f}x"),
                "REGRESSED" if row["regressed"] else "ok",
            ]
            for row in rows
        ],
        title=f"bench — medians vs baseline (tolerance {tolerance:.0%})",
    )


def diff_attribution(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Attribute per-scenario wall-clock deltas to the spans that moved.

    For each scenario present in both documents, the median-wall delta
    is broken down by span *self*-time deltas (self times partition a
    trace's wall clock, so shares do not double count nested spans).
    Returns one row per scenario:

    ``{"scenario", "baseline_s", "current_s", "delta_s", "delta_pct",
    "spans": [{"span", "baseline_self_s", "current_self_s",
    "delta_self_s", "share"}, ...], "only_baseline": [...],
    "only_current": [...]}``

    Span rows cover only spans present **on both sides** — when the two
    documents ran different engines (an ``--engine`` A/B, or a scenario
    redefined across PRs) their span trees differ, and attributing a
    span that simply *appeared* or *vanished* as if it moved from 0s
    would mis-state where the delta came from.  One-sided spans are
    listed separately in ``only_baseline`` / ``only_current`` (each
    ``{"span", "self_s"}``, sorted by self time, largest first).

    Shared-span rows are sorted by absolute self-time delta, largest
    first; ``share`` is the fraction of the scenario's wall delta the
    span accounts for (``None`` when the wall delta is zero).
    Scenarios without span breakdowns on both sides (pre-pipeline
    baselines) get empty lists rather than an error.
    """
    base = baseline.get("scenarios", {})
    curr = current.get("scenarios", {})
    rows: List[Dict[str, Any]] = []
    for name in [n for n in base if n in curr]:
        base_median = base[name].get("wall_s_median")
        curr_median = curr[name].get("wall_s_median")
        if not base_median or not curr_median:
            continue
        delta = curr_median - base_median
        base_spans = base[name].get("spans", {})
        curr_spans = curr[name].get("spans", {})
        span_rows: List[Dict[str, Any]] = []
        for span in [s for s in base_spans if s in curr_spans]:
            base_self = base_spans[span].get("self_s", 0.0)
            curr_self = curr_spans[span].get("self_s", 0.0)
            span_delta = curr_self - base_self
            span_rows.append(
                {
                    "span": span,
                    "baseline_self_s": base_self,
                    "current_self_s": curr_self,
                    "delta_self_s": round(span_delta, 6),
                    "share": (span_delta / delta) if delta else None,
                }
            )
        span_rows.sort(key=lambda row: -abs(row["delta_self_s"]))

        def _one_sided(spans, other):
            only = [
                {"span": s, "self_s": entry.get("self_s", 0.0)}
                for s, entry in spans.items()
                if s not in other
            ]
            only.sort(key=lambda row: -row["self_s"])
            return only

        rows.append(
            {
                "scenario": name,
                "baseline_s": base_median,
                "current_s": curr_median,
                "delta_s": round(delta, 6),
                "delta_pct": delta / base_median,
                "spans": span_rows,
                "only_baseline": _one_sided(base_spans, curr_spans),
                "only_current": _one_sided(curr_spans, base_spans),
            }
        )
    rows.sort(key=lambda row: -abs(row["delta_pct"]))
    return rows


def format_attribution(
    rows: List[Dict[str, Any]], top: int = 3, threshold: float = 0.02
) -> str:
    """A printable report of :func:`diff_attribution` rows.

    Scenarios whose wall delta is under ``threshold`` (fraction of the
    baseline median) are summarized on one line; for the rest, the
    ``top`` largest span movements are itemized with their share of the
    delta.
    """
    lines: List[str] = []
    quiet = 0
    for row in rows:
        pct = row["delta_pct"] * 100.0
        if abs(row["delta_pct"]) < threshold:
            quiet += 1
            continue
        direction = "slower" if row["delta_s"] > 0 else "faster"
        lines.append(
            f"{row['scenario']}: {row['baseline_s']:.4f}s -> "
            f"{row['current_s']:.4f}s ({pct:+.1f}%, {direction})"
        )
        movers = [r for r in row["spans"][:top] if r["delta_self_s"]]
        one_sided = row.get("only_baseline", []) or row.get(
            "only_current", []
        )
        if not movers and not one_sided:
            lines.append("  (no span breakdown on both sides)")
        for mover in movers:
            share = mover["share"]
            share_text = f"{share * 100.0:.0f}% of delta" if share is not None else "-"
            lines.append(
                f"  {mover['span']}: {mover['baseline_self_s']:.4f}s -> "
                f"{mover['current_self_s']:.4f}s self "
                f"({mover['delta_self_s']:+.4f}s, {share_text})"
            )
        for side, label in (
            ("only_baseline", "baseline only"),
            ("only_current", "current only"),
        ):
            for entry in row.get(side, [])[:top]:
                lines.append(
                    f"  {entry['span']}: {entry['self_s']:.4f}s self "
                    f"({label} — not attributed)"
                )
    if quiet:
        lines.append(
            f"{quiet} scenario(s) within {threshold:.0%} of baseline"
        )
    if not rows:
        lines.append("no scenarios common to both documents")
    return "\n".join(lines)


def diff_command(
    baseline_path: str, current_path: str, top: int = 3
) -> int:
    """The ``repro bench diff`` subcommand; returns the exit code."""
    import json

    documents = []
    for path in (baseline_path, current_path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 2
        if document.get("format") != FORMAT_NAME:
            print(
                f"{path}: not a {FORMAT_NAME} document",
                file=sys.stderr,
            )
            return 2
        documents.append(document)

    rows = diff_attribution(documents[0], documents[1])
    print(format_attribution(rows, top=top))
    # The attribution only covers scenarios present on both sides; call
    # out the asymmetric ones so a renamed or silently-dropped scenario
    # can't masquerade as "no movement".
    base_names = set(documents[0].get("scenarios", {}))
    curr_names = set(documents[1].get("scenarios", {}))
    for name in sorted(base_names - curr_names):
        print(
            f"warning: scenario in baseline but not current "
            f"(dropped?): {name}",
            file=sys.stderr,
        )
    for name in sorted(curr_names - base_names):
        print(
            f"warning: scenario in current but not baseline "
            f"(added?): {name}",
            file=sys.stderr,
        )
    return 0


def bench_command(
    output: Optional[str] = None,
    repeat: int = 5,
    against: Optional[str] = None,
    tolerance: float = 0.25,
) -> int:
    """The ``repro bench`` subcommand; returns the process exit code."""
    import json

    document = collect(repeat=repeat)
    if output:
        write_json_atomic(output, document)
        print(f"wrote {output}")
    if against is None:
        return 0

    try:
        with open(against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read baseline: {error}", file=sys.stderr)
        return 2

    rows = compare(document, baseline, tolerance=tolerance)
    print(format_comparison(rows, tolerance))
    regressions = [row for row in rows if row["regressed"]]
    if regressions:
        names = ", ".join(row["scenario"] for row in regressions)
        print(f"regression gate FAILED: {names}", file=sys.stderr)
        return 1
    print("regression gate passed")
    return 0
