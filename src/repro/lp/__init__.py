"""LP substrate: scipy-based cross-checks and relaxations."""

from repro.lp.feasibility import find_feasible_routing, splittable_feasible
from repro.lp.maxthroughput import max_throughput_lp, max_throughput_lp_macro
from repro.lp.progressive_filling import max_min_fair_lp
from repro.lp.splittable_maxmin import splittable_max_min_fair

__all__ = [
    "find_feasible_routing",
    "max_min_fair_lp",
    "max_throughput_lp",
    "max_throughput_lp_macro",
    "splittable_feasible",
    "splittable_max_min_fair",
]
