"""LP-based progressive filling — an independent max-min fairness solver.

The water-filling algorithm of :mod:`repro.core.maxmin` exploits the
structure of single-path routings.  This module computes the same
allocation through a sequence of LPs, the standard "progressive filling
by LP" scheme that works on any convex feasible region:

1. Maximize the common rate ``t`` of all unfrozen flows subject to
   capacities (frozen flows keep their rates).
2. A flow is *saturated* at the optimum if its rate cannot exceed ``t``
   while everyone else stays at ``≥ t``; test each unfrozen flow with a
   second LP maximizing that flow alone.
3. Freeze saturated flows at ``t`` and repeat until all flows frozen.

It is slower than water-filling by a large factor and returns floats,
but shares no code with it — the test suite uses agreement between the
two (within an epsilon) as a strong correctness check on both.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np
from scipy.optimize import linprog

from repro.core.allocation import Allocation
from repro.core.flows import Flow
from repro.core.routing import Link, Routing
from repro.obs import counter, trace_span

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_ROUNDS = counter("lp.progressive.rounds")
_LP_SOLVES = counter("lp.progressive.lp_solves")
_FORCED = counter("lp.progressive.forced_freezes")
#: Saturation slack: a flow is frozen when its max individual rate is
#: within this tolerance of the common level.  Must sit comfortably above
#: the solver's own optimality tolerance (HiGHS: ~1e-9) or saturated
#: flows fail the freeze test and the algorithm mis-freezes a grower.
_EPS = 1e-7


class LPError(RuntimeError):
    """Raised when scipy fails to solve an LP that should be feasible."""


def _finite_link_rows(
    routing: Routing,
    capacities: Dict[Link, float],
    index: Dict[Flow, int],
) -> List:
    """(coefficient row over flows, capacity) for each finite link."""
    rows = []
    for link, members in routing.flows_per_link().items():
        capacity = capacities[link]
        if capacity == _INF:
            continue
        row = np.zeros(len(index))
        for flow in members:
            row[index[flow]] = 1.0
        rows.append((row, float(capacity)))
    return rows


def max_min_fair_lp(
    routing: Routing, capacities: Dict[Link, float]
) -> Allocation:
    """The max-min fair allocation via iterated LPs (float rates)."""
    flows: List[Flow] = routing.flows()
    if not flows:
        return Allocation({})
    index = {flow: i for i, flow in enumerate(flows)}
    link_rows = _finite_link_rows(routing, capacities, index)

    frozen: Dict[Flow, float] = {}
    with trace_span("lp.progressive_filling", flows=len(flows)) as span:
        rounds = 0
        while len(frozen) < len(flows):
            rounds += 1
            _ROUNDS.inc()
            unfrozen = [f for f in flows if f not in frozen]
            level = _max_common_level(flows, index, link_rows, frozen, unfrozen)
            newly: Set[Flow] = set()
            headroom: Dict[Flow, float] = {}
            for flow in unfrozen:
                best = _max_single_flow(
                    flows, index, link_rows, frozen, unfrozen, level, flow
                )
                headroom[flow] = best
                if best <= level + _EPS:
                    newly.add(flow)
            if not newly:
                # Numerical edge: freeze the most-blocked flow to guarantee
                # progress (its max rate is closest to the common level).
                newly = {min(unfrozen, key=lambda f: headroom[f])}
                _FORCED.inc()
            for flow in newly:
                frozen[flow] = level
        span.set(rounds=rounds)
    return Allocation({f: max(0.0, r) for f, r in frozen.items()})


def _max_common_level(flows, index, link_rows, frozen, unfrozen) -> float:
    """LP: maximize t s.t. unfrozen rates = t, frozen rates fixed."""
    # Variables: one rate per flow, plus t (last).  Equality a_f = t for
    # unfrozen via two inequalities folded into bounds/equalities: we use
    # substitution instead — unfrozen flows' coefficient contributes to t.
    num_links = len(link_rows)
    c = np.zeros(1)
    c[0] = -1.0  # maximize t
    a_ub = np.zeros((num_links, 1))
    b_ub = np.zeros(num_links)
    for row_index, (row, capacity) in enumerate(link_rows):
        unfrozen_coeff = sum(row[index[f]] for f in unfrozen)
        frozen_load = sum(row[index[f]] * frozen[f] for f in frozen)
        a_ub[row_index, 0] = unfrozen_coeff
        b_ub[row_index] = capacity - frozen_load
    _LP_SOLVES.inc()
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:
        raise LPError(f"common-level LP failed: {result.message}")
    return float(result.x[0])


def _max_single_flow(
    flows, index, link_rows, frozen, unfrozen, level, target: Flow
) -> float:
    """LP: maximize target's rate with other unfrozen flows at ≥ level."""
    # Variables: rate of each unfrozen flow.  Others bounded below by
    # `level`, target unbounded above; frozen flows contribute constants.
    unfrozen_index = {f: i for i, f in enumerate(unfrozen)}
    n = len(unfrozen)
    c = np.zeros(n)
    c[unfrozen_index[target]] = -1.0
    rows = []
    b_ub = []
    for row, capacity in link_rows:
        coeffs = np.zeros(n)
        for flow in unfrozen:
            coeffs[unfrozen_index[flow]] = row[index[flow]]
        frozen_load = sum(row[index[f]] * frozen[f] for f in frozen)
        rows.append(coeffs)
        b_ub.append(capacity - frozen_load)
    bounds = [(max(0.0, level - _EPS), None)] * n
    _LP_SOLVES.inc()
    result = linprog(
        c,
        A_ub=np.vstack(rows) if rows else None,
        b_ub=np.array(b_ub) if rows else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise LPError(f"single-flow LP failed for {target!r}: {result.message}")
    return float(result.x[unfrozen_index[target]])
