"""Max-min fairness for *splittable* flows (the §1 premise, verified).

The paper's introduction recalls that with splittable flows a Clos
network is equivalent to its macro-switch: "arbitrary flow demands can
be routed inside the network such that the capacities of these links
are satisfied", so the inside of the network "can be abstracted away".
Every impossibility in the paper stems from dropping that splittability.

This module computes the max-min fair allocation when each flow may
split across all middle switches — progressive filling over a convex
region, solved by LPs with per-(flow, middle) path variables:

1. maximize the common rate ``t`` of all unfrozen flows, where a flow's
   rate is the *sum* of its path variables, subject to interior and
   server link capacities;
2. freeze the flows that cannot individually exceed ``t`` (tested per
   flow with a second LP);
3. repeat.

The headline theorem it verifies (experiment E16): the splittable
max-min rates in ``C_n`` equal the macro-switch max-min rates exactly —
including on the Theorem 4.3 construction, where unsplittable routing
provably starves the type-3 flow to 1/n but splitting restores rate 1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.allocation import Allocation
from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import InputSwitch, MiddleSwitch, OutputSwitch
from repro.core.topology import ClosNetwork

#: Freeze tolerance; must exceed the LP solver's optimality tolerance.
_EPS = 1e-7


class LPError(RuntimeError):
    """Raised when scipy fails on an LP that should be solvable."""


def _build_constraints(
    network: ClosNetwork, flows: FlowCollection
) -> Tuple[Dict[Tuple[Flow, int], int], List[Tuple[np.ndarray, float]]]:
    """Path variables x[f, m] and the capacity rows over them."""
    n = network.num_middles
    var: Dict[Tuple[Flow, int], int] = {}
    for flow in flows:
        for m in range(1, n + 1):
            var[(flow, m)] = len(var)
    size = len(var)
    capacities = network.graph.capacities()

    rows: List[Tuple[np.ndarray, float]] = []
    # server links (sum over the flow's middles)
    for source, members in flows.by_source().items():
        row = np.zeros(size)
        for flow in members:
            for m in range(1, n + 1):
                row[var[(flow, m)]] = 1.0
        capacity = float(capacities[(source, InputSwitch(source.switch))])
        rows.append((row, capacity))
    for dest, members in flows.by_destination().items():
        row = np.zeros(size)
        for flow in members:
            for m in range(1, n + 1):
                row[var[(flow, m)]] = 1.0
        capacity = float(capacities[(OutputSwitch(dest.switch), dest)])
        rows.append((row, capacity))
    # interior links
    for i in range(1, 2 * network.n + 1):
        for m in range(1, n + 1):
            up_row = np.zeros(size)
            down_row = np.zeros(size)
            up_used = down_used = False
            for flow in flows:
                if flow.source.switch == i:
                    up_row[var[(flow, m)]] = 1.0
                    up_used = True
                if flow.dest.switch == i:
                    down_row[var[(flow, m)]] = 1.0
                    down_used = True
            if up_used:
                rows.append(
                    (up_row, float(capacities[(InputSwitch(i), MiddleSwitch(m))]))
                )
            if down_used:
                rows.append(
                    (
                        down_row,
                        float(capacities[(MiddleSwitch(m), OutputSwitch(i))]),
                    )
                )
    return var, rows


def splittable_max_min_fair(
    network: ClosNetwork, flows: FlowCollection
) -> Allocation:
    """The max-min fair allocation with flows splittable across middles.

    Float rates (LP-based); compare against exact references with a
    small tolerance.
    """
    flow_list = list(flows)
    if not flow_list:
        return Allocation({})
    var, rows = _build_constraints(network, flows)
    n = network.num_middles
    size = len(var)

    frozen: Dict[Flow, float] = {}

    def solve_common_level() -> Tuple[float, np.ndarray]:
        """max t s.t. unfrozen flows' rates = t, frozen fixed at their rate."""
        unfrozen = [f for f in flow_list if f not in frozen]
        # variables: all path vars + t (last)
        c = np.zeros(size + 1)
        c[-1] = -1.0
        a_ub = []
        b_ub = []
        for row, capacity in rows:
            a_ub.append(np.concatenate([row, [0.0]]))
            b_ub.append(capacity)
        a_eq = []
        b_eq = []
        for flow in flow_list:
            row = np.zeros(size + 1)
            for m in range(1, n + 1):
                row[var[(flow, m)]] = 1.0
            if flow in frozen:
                a_eq.append(row)
                b_eq.append(frozen[flow])
            else:
                row[-1] = -1.0  # rate − t = 0
                a_eq.append(row)
                b_eq.append(0.0)
        result = linprog(
            c,
            A_ub=np.vstack(a_ub),
            b_ub=np.array(b_ub),
            A_eq=np.vstack(a_eq),
            b_eq=np.array(b_eq),
            bounds=(0, None),
            method="highs",
        )
        if not result.success:
            raise LPError(f"common-level LP failed: {result.message}")
        return float(result.x[-1]), result.x

    def max_single(target: Flow, level: float) -> float:
        """max rate(target) with other unfrozen at ≥ level, frozen fixed."""
        c = np.zeros(size)
        for m in range(1, n + 1):
            c[var[(target, m)]] = -1.0
        a_ub = []
        b_ub = []
        for row, capacity in rows:
            a_ub.append(row)
            b_ub.append(capacity)
        # other unfrozen flows: rate ≥ level  →  −rate ≤ −level
        for flow in flow_list:
            if flow is target or flow in frozen:
                continue
            row = np.zeros(size)
            for m in range(1, n + 1):
                row[var[(flow, m)]] = -1.0
            a_ub.append(row)
            b_ub.append(-(level - _EPS))
        a_eq = []
        b_eq = []
        for flow, rate in frozen.items():
            row = np.zeros(size)
            for m in range(1, n + 1):
                row[var[(flow, m)]] = 1.0
            a_eq.append(row)
            b_eq.append(rate)
        result = linprog(
            c,
            A_ub=np.vstack(a_ub),
            b_ub=np.array(b_ub),
            A_eq=np.vstack(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=(0, None),
            method="highs",
        )
        if not result.success:
            raise LPError(f"single-flow LP failed: {result.message}")
        return -float(result.fun)

    while len(frozen) < len(flow_list):
        level, _ = solve_common_level()
        unfrozen = [f for f in flow_list if f not in frozen]
        newly = []
        headroom = {}
        for flow in unfrozen:
            best = max_single(flow, level)
            headroom[flow] = best
            if best <= level + _EPS:
                newly.append(flow)
        if not newly:
            newly = [min(unfrozen, key=lambda f: headroom[f])]
        for flow in newly:
            frozen[flow] = level

    return Allocation({f: max(0.0, r) for f, r in frozen.items()})
