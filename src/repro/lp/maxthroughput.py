"""LP formulations of maximum throughput (cross-checks for Lemma 3.2).

``maximize  Σ_f a(f)``  subject to per-link capacity constraints for a
fixed routing, with ``a(f) ≥ 0``.

For the macro-switch the binding constraints are exactly the per-source
and per-destination unit capacities, so the LP is the fractional
relaxation of bipartite matching on ``G^MS`` — which is *integral*
(Birkhoff–von Neumann / König), hence the LP optimum equals the maximum
matching size.  The test suite uses this to validate the combinatorial
path of :mod:`repro.core.throughput` against ``scipy.optimize.linprog``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.allocation import Allocation
from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Link, Routing

_INF = float("inf")


class LPError(RuntimeError):
    """Raised when scipy fails to solve an LP that should be feasible."""


def max_throughput_lp(
    routing: Routing, capacities: Dict[Link, float]
) -> Tuple[float, Allocation]:
    """Maximum throughput for a *fixed* routing, via LP.

    Returns ``(optimal throughput, an optimal allocation)``.  Rates are
    floats (scipy); use the combinatorial solvers for exact results.
    """
    flows: List[Flow] = routing.flows()
    if not flows:
        return 0.0, Allocation({})
    index = {flow: i for i, flow in enumerate(flows)}

    rows: List[np.ndarray] = []
    bounds_b: List[float] = []
    per_link = routing.flows_per_link()
    for link, members in per_link.items():
        capacity = capacities[link]
        if capacity == _INF:
            continue
        row = np.zeros(len(flows))
        for flow in members:
            row[index[flow]] = 1.0
        rows.append(row)
        bounds_b.append(float(capacity))

    c = -np.ones(len(flows))  # maximize total rate
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.array(bounds_b) if rows else None
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:
        raise LPError(f"max-throughput LP failed: {result.message}")
    rates = {flow: max(0.0, float(result.x[index[flow]])) for flow in flows}
    return -float(result.fun), Allocation(rates)


def max_throughput_lp_macro(flows: FlowCollection) -> float:
    """The macro-switch maximum throughput via the matching-relaxation LP.

    Variables are flow rates; constraints are the unit capacities of each
    source's and each destination's server link.  By LP integrality of
    bipartite matching the optimum equals ``T^MT`` (Lemma 3.2).
    """
    flow_list = list(flows)
    if not flow_list:
        return 0.0
    index = {flow: i for i, flow in enumerate(flow_list)}

    rows: List[np.ndarray] = []
    for _, members in flows.by_source().items():
        row = np.zeros(len(flow_list))
        for flow in members:
            row[index[flow]] = 1.0
        rows.append(row)
    for _, members in flows.by_destination().items():
        row = np.zeros(len(flow_list))
        for flow in members:
            row[index[flow]] = 1.0
        rows.append(row)

    c = -np.ones(len(flow_list))
    result = linprog(
        c,
        A_ub=np.vstack(rows),
        b_ub=np.ones(len(rows)),
        bounds=(0, 1),
        method="highs",
    )
    if not result.success:
        raise LPError(f"macro max-throughput LP failed: {result.message}")
    return -float(result.fun)
