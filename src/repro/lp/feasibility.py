"""Routing feasibility for flows with *fixed demanded rates* (§4.1).

Example 4.1 asks: if every flow is offered to the data-center at its
macro-switch max-min rate, is there a *feasible routing* — an assignment
of each flow to a middle switch under which all link capacities hold?

Two solvers:

- :func:`find_feasible_routing` — exact backtracking over middle-switch
  assignments with residual-capacity pruning and a largest-rate-first
  ordering.  Returns a routing or ``None`` (a certified infeasibility
  when the search space is exhausted).  This is an NP-hard bin-packing
  style problem in general; the adversarial instances it must decide are
  small and heavily pruned.

- :func:`splittable_feasible` — the LP relaxation where flows may split
  across middle switches.  For any demands that satisfy the server-link
  capacities this LP is always feasible in a Clos network (the classic
  "demand satisfaction" property quoted in §1), which isolates
  *unsplittability* as the culprit in Theorem 4.2: the LP says yes while
  the exact search proves no.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import InputSwitch, MiddleSwitch, OutputSwitch
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork

Rate = Fraction


def find_feasible_routing(
    network: ClosNetwork,
    flows: FlowCollection,
    demands: Mapping[Flow, Rate],
    use_symmetry: bool = True,
) -> Optional[Routing]:
    """Search for a routing carrying every flow at its demanded rate.

    Backtracking over flows in decreasing demand order; a partial
    assignment is pruned as soon as any ``I_i M_m`` or ``M_m O_i``
    residual capacity would go negative.  Two symmetry reductions (both
    enabled by ``use_symmetry=True``) keep the adversarial instances
    tractable:

    - *middle-switch symmetry*: the search only opens middle-switch
      indices up to one beyond the highest index used so far;
    - *identical-flow symmetry*: flows with the same (source switch,
      destination switch, demand) signature are interchangeable, so
      consecutive identical flows are forced onto non-decreasing middle
      indices.

    Returns a feasible :class:`Routing`, or ``None`` if none exists
    (exhaustive, hence a proof of infeasibility).
    """
    n = network.num_middles
    num_tors = 2 * network.n

    # Server-link loads are routing-independent: reject demands that
    # overload them before searching the interior.
    server_caps = network.graph.capacities()
    for source, members in flows.by_source().items():
        capacity = Fraction(server_caps[(source, InputSwitch(source.switch))])
        if sum(Fraction(demands[f]) for f in members) > capacity:
            return None
    for dest, members in flows.by_destination().items():
        capacity = Fraction(server_caps[(OutputSwitch(dest.switch), dest)])
        if sum(Fraction(demands[f]) for f in members) > capacity:
            return None

    order: List[Flow] = sorted(
        flows, key=lambda f: (-demands[f], f.source, f.dest, f.tag)
    )

    def signature(flow: Flow) -> Tuple[int, int, Rate]:
        return (flow.source.switch, flow.dest.switch, demands[flow])

    graph_capacities = network.graph.capacities()
    up: Dict[Tuple[int, int], Rate] = {}  # (input switch, middle) residual
    down: Dict[Tuple[int, int], Rate] = {}  # (middle, output switch) residual
    for i in range(1, num_tors + 1):
        for m in range(1, n + 1):
            up[(i, m)] = Fraction(
                graph_capacities[(InputSwitch(i), MiddleSwitch(m))]
            )
            down[(m, i)] = Fraction(
                graph_capacities[(MiddleSwitch(m), OutputSwitch(i))]
            )

    assignment: Dict[Flow, int] = {}

    def recurse(position: int, highest: int, prev_floor: int) -> bool:
        """``prev_floor``: minimum middle index allowed for this flow when
        it shares its predecessor's signature (identical-flow symmetry)."""
        if position == len(order):
            return True
        flow = order[position]
        demand = Fraction(demands[flow])
        i, o = flow.source.switch, flow.dest.switch
        limit = min(n, highest + 1) if use_symmetry else n
        start = prev_floor if use_symmetry else 1
        for m in range(start, limit + 1):
            if up[(i, m)] < demand or down[(m, o)] < demand:
                continue
            up[(i, m)] -= demand
            down[(m, o)] -= demand
            assignment[flow] = m
            next_floor = 1
            if position + 1 < len(order) and signature(
                order[position + 1]
            ) == signature(flow):
                next_floor = m
            if recurse(position + 1, max(highest, m), next_floor):
                return True
            del assignment[flow]
            up[(i, m)] += demand
            down[(m, o)] += demand
        return False

    if not recurse(0, 0, 1):
        return None
    return Routing.from_middles(network, flows, assignment)


def iter_feasible_routings(
    network: ClosNetwork,
    flows: FlowCollection,
    demands: Mapping[Flow, Rate],
    limit: Optional[int] = None,
):
    """Yield *every* feasible routing for the demands (up to symmetries).

    Same pruned backtracking as :func:`find_feasible_routing`, but
    instead of stopping at the first witness it enumerates all feasible
    assignments modulo middle-switch and identical-flow symmetry — the
    tool for verifying universally-quantified routing claims such as
    Claim 4.5 ("for all feasible routings...").  ``limit`` caps the
    number of yielded routings (None = exhaustive).
    """
    n = network.num_middles

    server_caps = network.graph.capacities()
    for source, members in flows.by_source().items():
        capacity = Fraction(server_caps[(source, InputSwitch(source.switch))])
        if sum(Fraction(demands[f]) for f in members) > capacity:
            return
    for dest, members in flows.by_destination().items():
        capacity = Fraction(server_caps[(OutputSwitch(dest.switch), dest)])
        if sum(Fraction(demands[f]) for f in members) > capacity:
            return

    order: List[Flow] = sorted(
        flows, key=lambda f: (-demands[f], f.source, f.dest, f.tag)
    )

    def signature(flow: Flow) -> Tuple[int, int, Rate]:
        return (flow.source.switch, flow.dest.switch, demands[flow])

    up: Dict[Tuple[int, int], Rate] = {}
    down: Dict[Tuple[int, int], Rate] = {}
    for i in range(1, 2 * network.n + 1):
        for m in range(1, n + 1):
            up[(i, m)] = Fraction(
                server_caps[(InputSwitch(i), MiddleSwitch(m))]
            )
            down[(m, i)] = Fraction(
                server_caps[(MiddleSwitch(m), OutputSwitch(i))]
            )

    assignment: Dict[Flow, int] = {}
    yielded = 0

    def recurse(position: int, highest: int, prev_floor: int):
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if position == len(order):
            yielded += 1
            yield Routing.from_middles(network, flows, assignment)
            return
        flow = order[position]
        demand = Fraction(demands[flow])
        i, o = flow.source.switch, flow.dest.switch
        limit_m = min(n, highest + 1)
        for m in range(prev_floor, limit_m + 1):
            if up[(i, m)] < demand or down[(m, o)] < demand:
                continue
            up[(i, m)] -= demand
            down[(m, o)] -= demand
            assignment[flow] = m
            next_floor = 1
            if position + 1 < len(order) and signature(
                order[position + 1]
            ) == signature(flow):
                next_floor = m
            yield from recurse(position + 1, max(highest, m), next_floor)
            del assignment[flow]
            up[(i, m)] += demand
            down[(m, o)] += demand

    yield from recurse(0, 0, 1)


def splittable_feasible(
    network: ClosNetwork,
    flows: FlowCollection,
    demands: Mapping[Flow, Rate],
    tol: float = 1e-9,
) -> bool:
    """LP feasibility when flows may split across middle switches.

    Variables ``x[f, m] ≥ 0`` with ``Σ_m x[f, m] = demand(f)`` and the
    interior link capacities as inequalities.  (Server-link constraints
    involve no routing choice and are checked directly.)
    """
    n = network.num_middles
    flow_list = list(flows)
    if not flow_list:
        return True

    graph_capacities = network.graph.capacities()

    # Server links: demands through each are routing-independent.
    for source, members in flows.by_source().items():
        capacity = graph_capacities[(source, InputSwitch(source.switch))]
        if float(sum(demands[f] for f in members)) > float(capacity) + tol:
            return False
    for dest, members in flows.by_destination().items():
        capacity = graph_capacities[(OutputSwitch(dest.switch), dest)]
        if float(sum(demands[f] for f in members)) > float(capacity) + tol:
            return False

    var: Dict[Tuple[Flow, int], int] = {}
    counter = 0
    for f in flow_list:
        for m in range(1, n + 1):
            var[(f, m)] = counter
            counter += 1

    a_eq = np.zeros((len(flow_list), counter))
    b_eq = np.zeros(len(flow_list))
    for row, f in enumerate(flow_list):
        for m in range(1, n + 1):
            a_eq[row, var[(f, m)]] = 1.0
        b_eq[row] = float(demands[f])

    rows = []
    b_ub = []
    for i in range(1, 2 * network.n + 1):
        for m in range(1, n + 1):
            up_row = np.zeros(counter)
            down_row = np.zeros(counter)
            up_any = down_any = False
            for f in flow_list:
                if f.source.switch == i:
                    up_row[var[(f, m)]] = 1.0
                    up_any = True
                if f.dest.switch == i:
                    down_row[var[(f, m)]] = 1.0
                    down_any = True
            if up_any:
                rows.append(up_row)
                b_ub.append(
                    float(
                        graph_capacities[(InputSwitch(i), MiddleSwitch(m))]
                    )
                )
            if down_any:
                rows.append(down_row)
                b_ub.append(
                    float(
                        graph_capacities[(MiddleSwitch(m), OutputSwitch(i))]
                    )
                )

    result = linprog(
        np.zeros(counter),
        A_ub=np.vstack(rows) if rows else None,
        b_ub=np.array(b_ub) if rows else None,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    return bool(result.success)
