"""Minimum middle-switch counts for replicating macro-switch allocations.

The central quantity of the multirate-rearrangeability line of work the
paper reviews in §6: given a feasible macro-switch allocation, the
smallest ``m`` such that the Clos fabric with ``m`` middle switches
(same ToRs and servers) admits a routing carrying every flow at its
allocated rate.  The famous conjecture (Chung & Ross) puts the worst
case at ``m = 2n − 1``; the best known bounds are ``⌈5n/4⌉`` (lower)
and ``⌈20n/9⌉`` (upper).

- :func:`minimum_middles_exact` — certified minimum by incrementing
  ``m`` and running the exhaustive routing search (small instances).
- :func:`minimum_middles_heuristic` — upper bound via the first-fit /
  split-first-fit heuristics (any instance the heuristics solve).

Experiment E10 applies both to the paper's Theorem 4.2 construction:
the macro rates are unroutable at ``m = n`` (that *is* Theorem 4.2) —
how many extra middle switches repair it?
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, NamedTuple, Optional

from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.lp.feasibility import find_feasible_routing
from repro.rearrange.first_fit import first_fit_decreasing, split_first_fit

Rate = Fraction


class RearrangeResult(NamedTuple):
    """The minimum middle count found and a witness routing."""

    num_middles: int
    routing: Routing
    #: Network the witness routing lives in (middle_count = num_middles).
    network: ClosNetwork
    #: "exact", "ffd", or "split" — how the witness was found.
    method: str


def _expanded(n: int, m: int) -> ClosNetwork:
    return ClosNetwork(n, middle_count=m)


def minimum_middles_exact(
    n: int,
    flows: FlowCollection,
    demands: Mapping[Flow, Rate],
    max_middles: Optional[int] = None,
) -> RearrangeResult:
    """Certified minimum ``m`` by exhaustive search per candidate count.

    ``max_middles`` defaults to ``2n − 1`` (the conjectured worst case);
    raises ``ValueError`` if no count up to the cap works — which, for
    demands feasible in the macro-switch, would disprove the known
    ``⌈20n/9⌉`` upper bound, so it indicates infeasible inputs instead.
    """
    if max_middles is None:
        max_middles = max(2 * n - 1, (20 * n + 8) // 9)
    for m in range(1, max_middles + 1):
        network = _expanded(n, m)
        routing = find_feasible_routing(network, flows, demands)
        if routing is not None:
            return RearrangeResult(m, routing, network, "exact")
    raise ValueError(
        f"no middle count up to {max_middles} carries the demands —"
        " are they feasible in the macro-switch?"
    )


def minimum_middles_heuristic(
    n: int,
    flows: FlowCollection,
    demands: Mapping[Flow, Rate],
    max_middles: Optional[int] = None,
) -> RearrangeResult:
    """Upper bound on the minimum ``m`` via FFD and split-first-fit.

    For each candidate count both heuristics are tried; the first
    success wins.  Always ≥ the exact minimum.
    """
    if max_middles is None:
        max_middles = max(2 * n - 1, (20 * n + 8) // 9) + n
    for m in range(1, max_middles + 1):
        network = _expanded(n, m)
        routing = split_first_fit(network, flows, demands)
        if routing is not None:
            return RearrangeResult(m, routing, network, "split")
        routing = first_fit_decreasing(network, flows, demands)
        if routing is not None:
            return RearrangeResult(m, routing, network, "ffd")
    raise ValueError(
        f"heuristics failed for every middle count up to {max_middles}"
    )


def conjectured_worst_case(n: int) -> int:
    """Chung & Ross's conjectured sufficient middle count: ``2n − 1``."""
    return 2 * n - 1


def known_upper_bound(n: int) -> int:
    """Khan & Singh's proven sufficient middle count: ``⌈20n/9⌉``."""
    return -(-20 * n // 9)


def known_lower_bound(n: int) -> int:
    """Ngo & Vu's necessary middle count in the worst case: ``⌈5n/4⌉``."""
    return -(-5 * n // 4)
