"""First-fit routing heuristics for multirate rearrangeability (§6).

The multirate-rearrangeability literature the paper reviews (Chung &
Ross; Melen & Turner; Ngo & Vu; Khan & Singh) asks: given a feasible
macro-switch allocation, how many middle switches ``m`` does a Clos
fabric need so that *some* routing replicates the allocation?  The
known attack is "combinations of first-fit heuristics with König's
theorem"; this module implements that toolbox:

- :func:`first_fit_decreasing` — classic FFD bin packing: flows in
  decreasing demand order, each to the first middle switch whose two
  links still fit it.
- :func:`split_first_fit` — the rate-split refinement from the
  literature: route the *unit-rate* flows link-disjointly via König
  coloring (they pack perfectly), then first-fit the fractional rest —
  on the paper's adversarial instances this is exactly the structure
  the proofs exploit.

Both return a feasible :class:`Routing` or ``None``; neither is exact
(see :func:`repro.rearrange.minimize.minimum_middles_exact` for the
certified minimum).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.coloring.konig import ColoringError, edge_coloring
from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import InputSwitch, OutputSwitch
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.graph.bipartite import BipartiteMultigraph

Rate = Fraction


class _Residuals:
    """Residual capacities of the interior links, shared by the heuristics."""

    def __init__(self, network: ClosNetwork) -> None:
        self.network = network
        self.up: Dict[Tuple[int, int], Rate] = {}
        self.down: Dict[Tuple[int, int], Rate] = {}
        for i in range(1, 2 * network.n + 1):
            for m in range(1, network.num_middles + 1):
                self.up[(i, m)] = Fraction(1)
                self.down[(m, i)] = Fraction(1)

    def fits(self, flow: Flow, m: int, demand: Rate) -> bool:
        return (
            self.up[(flow.source.switch, m)] >= demand
            and self.down[(m, flow.dest.switch)] >= demand
        )

    def place(self, flow: Flow, m: int, demand: Rate) -> None:
        self.up[(flow.source.switch, m)] -= demand
        self.down[(m, flow.dest.switch)] -= demand


def _server_links_ok(flows: FlowCollection, demands: Mapping[Flow, Rate]) -> bool:
    for _, members in flows.by_source().items():
        if sum(Fraction(demands[f]) for f in members) > 1:
            return False
    for _, members in flows.by_destination().items():
        if sum(Fraction(demands[f]) for f in members) > 1:
            return False
    return True


def first_fit_decreasing(
    network: ClosNetwork,
    flows: FlowCollection,
    demands: Mapping[Flow, Rate],
) -> Optional[Routing]:
    """FFD: largest demand first, lowest-index middle switch that fits."""
    if not _server_links_ok(flows, demands):
        return None
    residuals = _Residuals(network)
    assignment: Dict[Flow, int] = {}
    order = sorted(flows, key=lambda f: (-Fraction(demands[f]), f.source, f.dest, f.tag))
    for flow in order:
        demand = Fraction(demands[flow])
        placed = False
        for m in range(1, network.num_middles + 1):
            if residuals.fits(flow, m, demand):
                residuals.place(flow, m, demand)
                assignment[flow] = m
                placed = True
                break
        if not placed:
            return None
    return Routing.from_middles(network, flows, assignment)


def split_first_fit(
    network: ClosNetwork,
    flows: FlowCollection,
    demands: Mapping[Flow, Rate],
    threshold: Rate = Fraction(1),
) -> Optional[Routing]:
    """König-route the ≥``threshold``-rate flows, first-fit the rest.

    With ``threshold = 1`` the König stage handles exactly the
    unit-rate flows (which must ride alone on their interior links), the
    regime where FFD's tie-breaking wastes capacity.  Falls back to
    ``None`` when the heavy flows alone need more than ``num_middles``
    colors or the light flows do not fit afterwards.
    """
    if not _server_links_ok(flows, demands):
        return None
    heavy = [f for f in flows if Fraction(demands[f]) >= threshold]
    light = [f for f in flows if Fraction(demands[f]) < threshold]

    residuals = _Residuals(network)
    assignment: Dict[Flow, int] = {}

    if heavy:
        graph = BipartiteMultigraph()
        for flow in heavy:
            graph.add_edge(
                InputSwitch(flow.source.switch),
                OutputSwitch(flow.dest.switch),
                key=flow,
            )
        try:
            colors = edge_coloring(graph, num_colors=network.num_middles)
        except ColoringError:
            return None
        for flow, color in colors.items():
            m = color + 1
            demand = Fraction(demands[flow])
            if not residuals.fits(flow, m, demand):
                return None
            residuals.place(flow, m, demand)
            assignment[flow] = m

    order = sorted(light, key=lambda f: (-Fraction(demands[f]), f.source, f.dest, f.tag))
    for flow in order:
        demand = Fraction(demands[flow])
        placed = False
        for m in range(1, network.num_middles + 1):
            if residuals.fits(flow, m, demand):
                residuals.place(flow, m, demand)
                assignment[flow] = m
                placed = True
                break
        if not placed:
            return None
    return Routing.from_middles(network, flows, assignment)
