"""Multirate rearrangeability: sizing the middle stage to replicate macro rates."""

from repro.rearrange.first_fit import first_fit_decreasing, split_first_fit
from repro.rearrange.minimize import (
    RearrangeResult,
    conjectured_worst_case,
    known_lower_bound,
    known_upper_bound,
    minimum_middles_exact,
    minimum_middles_heuristic,
)

__all__ = [
    "RearrangeResult",
    "conjectured_worst_case",
    "first_fit_decreasing",
    "known_lower_bound",
    "known_upper_bound",
    "minimum_middles_exact",
    "minimum_middles_heuristic",
    "split_first_fit",
]
