"""Hill-climbing local search over routings.

For instances whose routing space is too large to enumerate, we improve a
starting routing by repeatedly moving a single flow to a different middle
switch whenever the move improves the objective.  Two objectives mirror
the paper's Definitions 2.4 and 2.5:

- ``objective="lex"`` — the sorted rate vector of the max-min fair
  allocation, compared lexicographically (lex-max-min fairness);
- ``objective="throughput"`` — the throughput of the max-min fair
  allocation (throughput-max-min fairness), with the sorted vector as a
  tie-break.

Local search gives *lower bounds* on the optima — exactly the role it
plays in our Theorem 4.3 verification: the paper proves the closed-form
lex-max-min allocation optimal, and we confirm that no single-flow move
beats it (the optimum must be a local optimum).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.allocation import Allocation, lex_compare
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.obs import counter, trace_span

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_ROUNDS = counter("search.local.rounds")
_PROPOSED = counter("search.local.moves_proposed")
_ACCEPTED = counter("search.local.moves_accepted")


def _is_better(
    objective: str,
    candidate: Allocation,
    incumbent: Allocation,
) -> bool:
    if objective == "lex":
        return (
            lex_compare(candidate.sorted_vector(), incumbent.sorted_vector()) > 0
        )
    if objective == "throughput":
        if candidate.throughput() != incumbent.throughput():
            return candidate.throughput() > incumbent.throughput()
        return (
            lex_compare(candidate.sorted_vector(), incumbent.sorted_vector()) > 0
        )
    raise ValueError(f"unknown objective: {objective!r}")


def improve_routing(
    network: ClosNetwork,
    routing: Routing,
    objective: str = "lex",
    exact: bool = True,
    max_rounds: Optional[int] = None,
    on_improvement: Optional[Callable[[Routing, Allocation], None]] = None,
) -> Tuple[Routing, Allocation]:
    """Hill-climb from ``routing`` using single-flow middle-switch moves.

    Returns the locally optimal ``(routing, allocation)``.  Each round
    scans every (flow, middle switch) move and applies the first
    improving one; the search stops when a full scan finds no improving
    move or after ``max_rounds`` rounds.
    """
    capacities = network.graph.capacities()
    best_routing = routing
    best_alloc = max_min_fair(routing, capacities, exact=exact)
    rounds = 0
    with trace_span(
        "search.local_search",
        objective=objective,
        flows=len(routing.flows()),
    ) as span:
        while max_rounds is None or rounds < max_rounds:
            rounds += 1
            _ROUNDS.inc()
            improved = False
            current_middles = best_routing.middles(network)
            for flow in best_routing.flows():
                here = current_middles[flow]
                for m in range(1, network.num_middles + 1):
                    if m == here:
                        continue
                    _PROPOSED.inc()
                    candidate_routing = best_routing.reassigned(network, flow, m)
                    candidate_alloc = max_min_fair(
                        candidate_routing, capacities, exact=exact
                    )
                    if _is_better(objective, candidate_alloc, best_alloc):
                        best_routing = candidate_routing
                        best_alloc = candidate_alloc
                        improved = True
                        _ACCEPTED.inc()
                        if on_improvement is not None:
                            on_improvement(best_routing, best_alloc)
                        break
                if improved:
                    break
            if not improved:
                break
        span.set(rounds=rounds)
    return best_routing, best_alloc


def is_local_optimum(
    network: ClosNetwork,
    routing: Routing,
    objective: str = "lex",
    exact: bool = True,
) -> bool:
    """True if no single-flow middle-switch move improves the objective."""
    capacities = network.graph.capacities()
    incumbent = max_min_fair(routing, capacities, exact=exact)
    middles = routing.middles(network)
    for flow in routing.flows():
        here = middles[flow]
        for m in range(1, network.num_middles + 1):
            if m == here:
                continue
            candidate = max_min_fair(
                routing.reassigned(network, flow, m), capacities, exact=exact
            )
            if _is_better(objective, candidate, incumbent):
                return False
    return True
