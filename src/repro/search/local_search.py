"""Hill-climbing local search over routings.

For instances whose routing space is too large to enumerate, we improve a
starting routing by repeatedly moving a single flow to a different middle
switch whenever the move improves the objective.  Two objectives mirror
the paper's Definitions 2.4 and 2.5:

- ``objective="lex"`` — the sorted rate vector of the max-min fair
  allocation, compared lexicographically (lex-max-min fairness);
- ``objective="throughput"`` — the throughput of the max-min fair
  allocation (throughput-max-min fairness), with the sorted vector as a
  tie-break.

Local search gives *lower bounds* on the optima — exactly the role it
plays in our Theorem 4.3 verification: the paper proves the closed-form
lex-max-min allocation optimal, and we confirm that no single-flow move
beats it (the optimum must be a local optimum).

Performance: candidate moves are evaluated by
:class:`repro.core.incremental.MoveEvaluator` (patching four
link-occupancy entries instead of re-solving from a fresh
:class:`~repro.core.routing.Routing`), already-seen routings are served
from an :class:`~repro.core.cache.AllocationCache`, and the
first-improvement scan *rotates*: after an accepted move the next round
resumes at the following flow rather than restarting from the first, so
a stretch of unimprovable flows is not re-probed on every round.  Both
:func:`improve_routing` and :func:`is_local_optimum` draw their moves
from the single :func:`candidate_moves` generator, so the definition of
the move neighborhood cannot drift between them.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.allocation import Allocation, lex_compare
from repro.core.cache import AllocationCache
from repro.core.flows import Flow
from repro.core.incremental import MoveEvaluator
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.obs import counter, trace_span

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_ROUNDS = counter("search.local.rounds")
_PROPOSED = counter("search.local.moves_proposed")
_ACCEPTED = counter("search.local.moves_accepted")


def _is_better(
    objective: str,
    candidate: Allocation,
    incumbent: Allocation,
) -> bool:
    if objective == "lex":
        return (
            lex_compare(candidate.sorted_vector(), incumbent.sorted_vector()) > 0
        )
    if objective == "throughput":
        if candidate.throughput() != incumbent.throughput():
            return candidate.throughput() > incumbent.throughput()
        return (
            lex_compare(candidate.sorted_vector(), incumbent.sorted_vector()) > 0
        )
    raise ValueError(f"unknown objective: {objective!r}")


def candidate_moves(
    num_middles: int,
    middles: Mapping[Flow, int],
    flow_order: Sequence[Flow],
    start: int = 0,
) -> Iterator[Tuple[int, Flow, int]]:
    """Yield every single-flow move as ``(flow_index, flow, middle)``.

    The neighborhood of a Clos routing: for each flow (scanned in
    ``flow_order`` starting at index ``start`` and wrapping around) and
    each middle switch other than the flow's current one.  This is the
    single definition of the move set shared by :func:`improve_routing`
    and :func:`is_local_optimum`.
    """
    total = len(flow_order)
    for offset in range(total):
        index = (start + offset) % total
        flow = flow_order[index]
        here = middles[flow]
        for m in range(1, num_middles + 1):
            if m != here:
                yield index, flow, m


def improve_routing(
    network: ClosNetwork,
    routing: Routing,
    objective: str = "lex",
    exact: bool = True,
    max_rounds: Optional[int] = None,
    on_improvement: Optional[Callable[[Routing, Allocation], None]] = None,
    cache: Optional[AllocationCache] = None,
) -> Tuple[Routing, Allocation]:
    """Hill-climb from ``routing`` using single-flow middle-switch moves.

    Returns the locally optimal ``(routing, allocation)``.  Each round
    applies the first improving move found, resuming the scan just past
    the previously accepted move (rotating first-improvement); the
    search stops when a full wrap-around finds no improving move or
    after ``max_rounds`` accepted-move rounds.  Pass ``cache`` to share
    solved allocations with other searches over the same network.
    """
    if cache is None:
        cache = AllocationCache()
    evaluator = MoveEvaluator(
        network,
        routing,
        capacities=cache.capacities_for(network),
        exact=exact,
        cache=cache,
    )
    best_alloc = evaluator.base_allocation()
    flow_order = routing.flows()
    start = 0
    rounds = 0
    with trace_span(
        "search.local_search",
        objective=objective,
        flows=len(flow_order),
    ) as span:
        while max_rounds is None or rounds < max_rounds:
            rounds += 1
            _ROUNDS.inc()
            improved = False
            for index, flow, m in candidate_moves(
                network.num_middles, evaluator.middles, flow_order, start
            ):
                _PROPOSED.inc()
                candidate_alloc = evaluator.evaluate(flow, m)
                if _is_better(objective, candidate_alloc, best_alloc):
                    evaluator.apply(flow, m)
                    best_alloc = candidate_alloc
                    improved = True
                    _ACCEPTED.inc()
                    start = (index + 1) % len(flow_order)
                    if on_improvement is not None:
                        on_improvement(evaluator.routing(), best_alloc)
                    break
            if not improved:
                break
        span.set(rounds=rounds)
    return evaluator.routing(), best_alloc


def is_local_optimum(
    network: ClosNetwork,
    routing: Routing,
    objective: str = "lex",
    exact: bool = True,
    cache: Optional[AllocationCache] = None,
) -> bool:
    """True if no single-flow middle-switch move improves the objective."""
    capacities = None if cache is None else cache.capacities_for(network)
    evaluator = MoveEvaluator(
        network, routing, capacities=capacities, exact=exact, cache=cache
    )
    incumbent = evaluator.base_allocation()
    for _, flow, m in candidate_moves(
        network.num_middles, evaluator.middles, routing.flows()
    ):
        if _is_better(objective, evaluator.evaluate(flow, m), incumbent):
            return False
    return True
