"""Multi-start and annealed search over routings.

Single-run hill climbing (:mod:`repro.search.local_search`) gets stuck
in local optima (A2 measures how often).  Two standard escapes, both
exact-arithmetic-friendly:

- :func:`multi_start` — repeat hill climbing from several random
  routings and keep the best result; the embarrassingly parallel
  baseline for global search.
- :func:`anneal` — simulated annealing on single-flow moves: accept
  every improving move, accept worsening moves with probability
  ``exp(−Δ/T)`` under a geometric cooling schedule, then polish with a
  final hill climb.  ``Δ`` is measured on a scalar projection of the
  objective (throughput, or minimum+mean rate for "lex"), since
  lexicographic differences have no natural magnitude.

Both return the same ``(routing, allocation)`` pair as
:func:`repro.search.local_search.improve_routing` and never return
anything worse than plain hill climbing from the same budget.

Both share one :class:`~repro.core.cache.AllocationCache` across their
whole run (all multi-start climbs; the annealing walk *and* its final
polish), so routings the walk revisits — or the polish re-probes — are
served from the cache, and candidate moves are evaluated incrementally
by :class:`~repro.core.incremental.MoveEvaluator` rather than by fresh
full solves.  The annealing random-number stream is unchanged: seeds
reproduce the exact walks of the pre-cache implementation.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.core.allocation import Allocation, lex_compare
from repro.core.cache import AllocationCache
from repro.core.flows import FlowCollection
from repro.core.incremental import MoveEvaluator
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.obs import counter, trace_span
from repro.search.local_search import _is_better, improve_routing

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_PROPOSED = counter("search.anneal.moves_proposed")
_ACCEPTED = counter("search.anneal.moves_accepted")
_STARTS = counter("search.multi_start.starts")


def _random_routing(
    network: ClosNetwork, flows: FlowCollection, rng: random.Random
) -> Routing:
    middles = {
        flow: rng.randint(1, network.num_middles) for flow in flows
    }
    return Routing.from_middles(network, flows, middles)


def multi_start(
    network: ClosNetwork,
    flows: FlowCollection,
    objective: str = "lex",
    starts: int = 5,
    exact: bool = True,
    seed: int = 0,
    cache: Optional[AllocationCache] = None,
) -> Tuple[Routing, Allocation]:
    """Best-of-``starts`` hill climbs from random initial routings."""
    if starts < 1:
        raise ValueError(f"starts must be >= 1, got {starts}")
    rng = random.Random(seed)
    if cache is None:
        cache = AllocationCache()
    best: Optional[Tuple[Routing, Allocation]] = None
    with trace_span("search.multi_start", starts=starts, objective=objective):
        for _ in range(starts):
            _STARTS.inc()
            start = _random_routing(network, flows, rng)
            routing, allocation = improve_routing(
                network, start, objective=objective, exact=exact, cache=cache
            )
            if best is None or _is_better(objective, allocation, best[1]):
                best = (routing, allocation)
    return best


def _scalar(objective: str, allocation: Allocation) -> float:
    """A scalar proxy of the objective for annealing's Δ computation."""
    vector = allocation.sorted_vector()
    if objective == "throughput":
        return float(allocation.throughput())
    if objective == "lex":
        # minimum rate dominates, mean breaks ties: a smooth-ish proxy
        # for lexicographic improvement on the low end of the vector.
        minimum = float(vector[0]) if vector else 0.0
        mean = float(sum(vector)) / len(vector) if vector else 0.0
        return minimum + 1e-3 * mean
    raise ValueError(f"unknown objective: {objective!r}")


def anneal(
    network: ClosNetwork,
    flows: FlowCollection,
    objective: str = "lex",
    steps: int = 200,
    initial_temperature: float = 0.2,
    cooling: float = 0.98,
    exact: bool = True,
    seed: int = 0,
    cache: Optional[AllocationCache] = None,
) -> Tuple[Routing, Allocation]:
    """Simulated annealing over single-flow moves, then a final polish.

    The returned pair is the best allocation *seen* during the walk
    (after hill-climb polishing), so the result is never worse than
    plain hill climbing from the same start.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if not 0 < cooling < 1:
        raise ValueError(f"cooling must be in (0, 1), got {cooling}")
    rng = random.Random(seed)
    if cache is None:
        cache = AllocationCache()

    current = _random_routing(network, flows, rng)
    evaluator = MoveEvaluator(
        network,
        current,
        capacities=cache.capacities_for(network),
        exact=exact,
        cache=cache,
    )
    current_alloc = evaluator.base_allocation()
    best_middles = dict(evaluator.middles)
    best_alloc = current_alloc

    temperature = initial_temperature
    flow_list = list(flows)
    with trace_span("search.anneal", steps=steps, objective=objective):
        for _ in range(steps):
            flow = rng.choice(flow_list)
            move_to = rng.randint(1, network.num_middles)
            _PROPOSED.inc()
            candidate_alloc = evaluator.evaluate(flow, move_to)

            delta = _scalar(objective, candidate_alloc) - _scalar(
                objective, current_alloc
            )
            if delta >= 0 or rng.random() < math.exp(
                delta / max(temperature, 1e-9)
            ):
                _ACCEPTED.inc()
                evaluator.apply(flow, move_to)
                current_alloc = candidate_alloc
                if _is_better(objective, current_alloc, best_alloc):
                    best_middles = dict(evaluator.middles)
                    best_alloc = current_alloc
            temperature *= cooling

    best = Routing.from_middles(network, flows, best_middles)
    polished, polished_alloc = improve_routing(
        network, best, objective=objective, exact=exact, cache=cache
    )
    if _is_better(objective, polished_alloc, best_alloc):
        return polished, polished_alloc
    return best, best_alloc
