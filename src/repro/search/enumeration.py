"""Enumeration of the routing space of a Clos network.

A routing in ``C_n`` is a flow → middle-switch assignment, so the raw
routing space has ``n^|F|`` elements.  Two symmetries cut this down:

- **Middle-switch symmetry.**  ``C_n`` is invariant under any permutation
  of its middle switches (all ``I_i M_m`` / ``M_m O_i`` links are
  identical), so assignments that differ only by relabeling middle
  switches yield identical sorted rate vectors and throughput.  We
  enumerate one canonical representative per orbit using *restricted
  growth strings*: the first flow always uses switch 1, and each later
  flow uses a switch index at most one above the maximum used so far.
  This reduces ``n^F`` to the number of set partitions into ≤ n blocks
  (a Stirling-number count), an ``n!``-ish saving.

The objective solvers in :mod:`repro.core.objectives` consume these
enumerations; they are exact on the orbit representatives because both
objectives (sorted-vector lexicographic order and throughput) are
invariant under the symmetry.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.core.allocation import Allocation
from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork


def canonical_assignments(
    flows: FlowCollection, n: int
) -> Iterator[Dict[Flow, int]]:
    """Yield one flow → middle-switch map per middle-switch-symmetry orbit.

    Assignments are restricted growth strings over switch indices
    ``1..n``: the first flow maps to 1 and every subsequent flow maps to
    an index at most ``1 + max`` of the indices used so far (capped at
    ``n``).

    >>> from repro.core.topology import ClosNetwork
    >>> from repro.workloads.adversarial import example_2_3  # doctest: +SKIP
    """
    flow_list = list(flows)
    if not flow_list:
        yield {}
        return

    def recurse(index: int, highest: int, partial: Dict[Flow, int]):
        if index == len(flow_list):
            yield dict(partial)
            return
        limit = min(n, highest + 1)
        for m in range(1, limit + 1):
            partial[flow_list[index]] = m
            yield from recurse(index + 1, max(highest, m), partial)
        del partial[flow_list[index]]

    yield from recurse(0, 0, {})


def all_assignments(flows: FlowCollection, n: int) -> Iterator[Dict[Flow, int]]:
    """Yield every flow → middle-switch map (the full ``n^|F|`` space)."""
    flow_list = list(flows)

    def recurse(index: int, partial: Dict[Flow, int]):
        if index == len(flow_list):
            yield dict(partial)
            return
        for m in range(1, n + 1):
            partial[flow_list[index]] = m
            yield from recurse(index + 1, partial)
        del partial[flow_list[index]]

    yield from recurse(0, {})


def enumerate_routings(
    network: ClosNetwork,
    flows: FlowCollection,
    use_symmetry: bool = True,
) -> Iterator[Routing]:
    """Yield routings of ``flows`` in ``network``.

    With ``use_symmetry=True`` (default) one representative per
    middle-switch-symmetry orbit is produced; sorted rate vectors and
    throughputs over the full space coincide with those over the
    representatives.
    """
    generator = canonical_assignments if use_symmetry else all_assignments
    for assignment in generator(flows, network.num_middles):
        yield Routing.from_middles(network, flows, assignment)


def batched_allocations(
    network: ClosNetwork,
    flows: FlowCollection,
    capacities=None,
    use_symmetry: bool = True,
    batch_size: int = 64,
    exact: bool = False,
    jobs: int = 1,
) -> Iterator[Tuple[Routing, Allocation]]:
    """Yield ``(routing, allocation)`` over the enumeration, solved in batches.

    Instead of one solver call per routing, ``batch_size`` routings at a
    time are stacked into a block-diagonal incidence and water-filled
    together by :func:`repro.core.batched.solve_max_min_batch` — the
    per-round NumPy dispatch overhead is paid once per *batch* instead
    of once per routing, which dominates at the small instance sizes
    enumeration reaches.  Float allocations match per-instance
    ``vectorized`` solves bit-for-bit; ``exact=True`` delegates to the
    exact reference per instance (identical results, no speedup).
    ``jobs > 1`` additionally splits each batch across worker processes
    over shared memory.
    """
    caps = network.graph.capacities() if capacities is None else capacities
    from repro.core.batched import solve_max_min_batch

    def flush(chunk: List[Routing]):
        allocations = solve_max_min_batch(
            [(routing, caps) for routing in chunk], exact=exact, jobs=jobs
        )
        return zip(chunk, allocations)

    chunk: List[Routing] = []
    for routing in enumerate_routings(network, flows, use_symmetry=use_symmetry):
        chunk.append(routing)
        if len(chunk) >= batch_size:
            yield from flush(chunk)
            chunk = []
    if chunk:
        yield from flush(chunk)


def routing_space_size(num_flows: int, n: int, use_symmetry: bool) -> int:
    """The number of assignments the corresponding enumeration visits."""
    if not use_symmetry:
        return n ** num_flows
    # Restricted growth strings with values capped at n: count by dynamic
    # programming over (position, highest value used).
    counts: List[int] = [0] * (n + 1)
    counts[0] = 1
    for _ in range(num_flows):
        nxt = [0] * (n + 1)
        for highest, ways in enumerate(counts):
            if not ways:
                continue
            limit = min(n, highest + 1)
            for m in range(1, limit + 1):
                nxt[max(highest, m)] += ways
        counts = nxt
    return sum(counts[1:]) if num_flows else 1
