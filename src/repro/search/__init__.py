"""Routing-space search: symmetry-reduced enumeration and local search."""

from repro.search.enumeration import (
    all_assignments,
    canonical_assignments,
    enumerate_routings,
    routing_space_size,
)
from repro.search.annealing import anneal, multi_start
from repro.search.local_search import improve_routing, is_local_optimum

__all__ = [
    "all_assignments",
    "anneal",
    "canonical_assignments",
    "enumerate_routings",
    "improve_routing",
    "is_local_optimum",
    "multi_start",
    "routing_space_size",
]
