"""Bipartite multigraphs over flow collections.

The paper uses two *demand* multigraphs built from a collection of flows:

- ``G^MS`` (§3, Lemma 3.2): start nodes are the *sources* of the
  macro-switch, end nodes are the *destinations*, and there is one
  parallel edge per flow.  A maximum matching in ``G^MS`` characterizes a
  maximum-throughput allocation.

- ``G^C`` (§5, Lemma 5.2): start nodes are the *input switches* of the
  Clos network, end nodes are the *output switches*, and there is one
  parallel edge per flow, identified by its input–output switch pair.  An
  ``n``-edge-coloring of ``G^C`` (König) corresponds to a link-disjoint
  routing of the flows through the ``n`` middle switches.

Because parallel edges matter (multiple flows may share endpoints), this
is a genuine *multigraph*: every edge carries a distinct hashable key
(we use the flow itself).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

Node = Hashable
EdgeKey = Hashable
#: A multigraph edge: (left endpoint, right endpoint, key).
Edge = Tuple[Node, Node, EdgeKey]


class BipartiteMultigraph:
    """A bipartite multigraph with keyed parallel edges.

    >>> g = BipartiteMultigraph()
    >>> g.add_edge("u", "v", key="f1")
    >>> g.add_edge("u", "v", key="f2")
    >>> g.degree("u")
    2
    >>> g.max_degree()
    2
    """

    def __init__(self) -> None:
        self._left: Set[Node] = set()
        self._right: Set[Node] = set()
        # key -> (left, right); insertion-ordered
        self._edges: Dict[EdgeKey, Tuple[Node, Node]] = {}
        self._incident_left: Dict[Node, List[EdgeKey]] = {}
        self._incident_right: Dict[Node, List[EdgeKey]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_left(self, node: Node) -> None:
        """Register ``node`` on the left side (idempotent)."""
        if node in self._right:
            raise ValueError(f"node {node!r} already on the right side")
        self._left.add(node)
        self._incident_left.setdefault(node, [])

    def add_right(self, node: Node) -> None:
        """Register ``node`` on the right side (idempotent)."""
        if node in self._left:
            raise ValueError(f"node {node!r} already on the left side")
        self._right.add(node)
        self._incident_right.setdefault(node, [])

    def add_edge(self, left: Node, right: Node, key: EdgeKey) -> None:
        """Add a parallel edge ``left -- right`` identified by ``key``.

        Endpoints are registered on their sides if new.  Keys must be
        unique across the whole graph.
        """
        if key in self._edges:
            raise ValueError(f"duplicate edge key: {key!r}")
        self.add_left(left)
        self.add_right(right)
        self._edges[key] = (left, right)
        self._incident_left[left].append(key)
        self._incident_right[right].append(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def left_nodes(self) -> List[Node]:
        return sorted(self._left, key=repr)

    @property
    def right_nodes(self) -> List[Node]:
        return sorted(self._right, key=repr)

    @property
    def edge_keys(self) -> List[EdgeKey]:
        """All edge keys, in insertion order."""
        return list(self._edges)

    def edges(self) -> List[Edge]:
        """All edges as ``(left, right, key)`` triples, insertion order."""
        return [(u, v, k) for k, (u, v) in self._edges.items()]

    def endpoints(self, key: EdgeKey) -> Tuple[Node, Node]:
        """The ``(left, right)`` endpoints of edge ``key``."""
        return self._edges[key]

    def num_edges(self) -> int:
        return len(self._edges)

    def incident(self, node: Node) -> List[EdgeKey]:
        """Edge keys incident to ``node`` (on either side)."""
        if node in self._left:
            return list(self._incident_left[node])
        if node in self._right:
            return list(self._incident_right[node])
        raise KeyError(node)

    def degree(self, node: Node) -> int:
        """Number of parallel edges incident to ``node``."""
        return len(self.incident(node))

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for an empty graph)."""
        degrees = [len(ks) for ks in self._incident_left.values()]
        degrees += [len(ks) for ks in self._incident_right.values()]
        return max(degrees, default=0)

    def neighbors(self, node: Node) -> List[Node]:
        """Distinct opposite-side endpoints of edges at ``node``."""
        if node in self._left:
            seen = {self._edges[k][1] for k in self._incident_left[node]}
        elif node in self._right:
            seen = {self._edges[k][0] for k in self._incident_right[node]}
        else:
            raise KeyError(node)
        return sorted(seen, key=repr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(left={len(self._left)},"
            f" right={len(self._right)}, edges={len(self._edges)})"
        )


def build_multigraph(
    pairs: Iterable[Tuple[Node, Node, EdgeKey]],
) -> BipartiteMultigraph:
    """Build a :class:`BipartiteMultigraph` from ``(left, right, key)`` triples."""
    graph = BipartiteMultigraph()
    for left, right, key in pairs:
        graph.add_edge(left, right, key)
    return graph
