"""Graph substrates: a capacity-annotated digraph and bipartite multigraphs."""

from repro.graph.bipartite import BipartiteMultigraph, build_multigraph
from repro.graph.digraph import INFINITE_CAPACITY, DiGraph

__all__ = [
    "BipartiteMultigraph",
    "DiGraph",
    "INFINITE_CAPACITY",
    "build_multigraph",
]
