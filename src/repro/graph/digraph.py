"""A minimal capacity-annotated directed graph.

This module provides the graph substrate used by every topology in the
library.  It is deliberately small: the Clos network :class:`C_n` and its
macro-switch abstraction :class:`MS_n` (see :mod:`repro.core.topology`)
only need node/link bookkeeping, per-link capacities, and adjacency
queries.  We implement it from scratch rather than depending on networkx
so that the core library stands alone; networkx is used in the test suite
purely as an oracle.

Nodes may be any hashable object.  Links are ordered pairs ``(u, v)``.
This is a *simple* directed graph — at most one link per ordered pair —
which matches the Clos/macro-switch topologies of the paper (multiplicity
lives in the *flow collection*, not in the topology; see
:mod:`repro.graph.bipartite` for the multigraphs over flows).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple, Union

Node = Hashable
Link = Tuple[Node, Node]
Capacity = Union[int, float, Fraction]

#: Sentinel capacity for links that can never be saturated (the links
#: between ToR switches inside a macro-switch).  We use ``float("inf")``,
#: which composes with both float and Fraction arithmetic under min()/
#: comparison as used by the water-filling algorithm.
INFINITE_CAPACITY: float = float("inf")


class DiGraph:
    """A directed graph with per-link capacities.

    >>> g = DiGraph()
    >>> g.add_node("a")
    >>> g.add_link("a", "b", capacity=2)
    >>> g.capacity("a", "b")
    2
    >>> sorted(g.successors("a"))
    ['b']
    """

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._capacity: Dict[Link, Capacity] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (idempotent)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_link(self, u: Node, v: Node, capacity: Capacity = 1) -> None:
        """Add the link ``(u, v)`` with the given ``capacity``.

        Both endpoints are added if absent.  Re-adding an existing link
        overwrites its capacity.
        """
        self.add_node(u)
        self.add_node(v)
        self._succ[u].add(v)
        self._pred[v].add(u)
        self._capacity[(u, v)] = capacity

    def remove_link(self, u: Node, v: Node) -> None:
        """Remove the link ``(u, v)``; raises ``KeyError`` if absent."""
        del self._capacity[(u, v)]
        self._succ[u].discard(v)
        self._pred[v].discard(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._succ)

    @property
    def links(self) -> List[Link]:
        """All links, in insertion order."""
        return list(self._capacity)

    def num_nodes(self) -> int:
        return len(self._succ)

    def num_links(self) -> int:
        return len(self._capacity)

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_link(self, u: Node, v: Node) -> bool:
        return (u, v) in self._capacity

    def capacity(self, u: Node, v: Node) -> Capacity:
        """Capacity of link ``(u, v)``; raises ``KeyError`` if absent."""
        return self._capacity[(u, v)]

    def capacities(self) -> Dict[Link, Capacity]:
        """A copy of the link → capacity map."""
        return dict(self._capacity)

    def successors(self, node: Node) -> Iterator[Node]:
        return iter(self._succ[node])

    def predecessors(self, node: Node) -> Iterator[Node]:
        return iter(self._pred[node])

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    # ------------------------------------------------------------------
    # Path utilities
    # ------------------------------------------------------------------
    def is_path(self, path: Iterable[Node]) -> bool:
        """True if ``path`` is a sequence of nodes joined by links."""
        nodes = list(path)
        if not nodes:
            return False
        if len(nodes) == 1:
            return self.has_node(nodes[0])
        return all(self.has_link(u, v) for u, v in zip(nodes, nodes[1:]))

    def path_links(self, path: Iterable[Node]) -> List[Link]:
        """The list of links along ``path`` (validates the path).

        Raises ``ValueError`` if ``path`` is not a path in this graph.
        """
        nodes = list(path)
        if not self.is_path(nodes):
            raise ValueError(f"not a path in this graph: {nodes!r}")
        return list(zip(nodes, nodes[1:]))

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.num_nodes()},"
            f" links={self.num_links()})"
        )
