"""Trace-file workloads: load and save flow collections as CSV.

Production evaluations replay measured traces (the paper's refs [29, 30]
analyze such traces).  This module defines a minimal interchange format
so workloads can come from files rather than generators:

    # comment lines allowed
    src_switch,src_server,dst_switch,dst_server
    1,1,3,2
    1,1,3,2          # duplicate rows become parallel flows (tags 0,1,…)
    2,2,4,1

Parallel flows are expressed by repeating a row; tags are assigned in
file order.  :func:`save_trace` writes the same format, so any
`FlowCollection` round-trips.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from repro.core.flows import FlowCollection
from repro.core.topology import ClosNetwork


class TraceError(ValueError):
    """Raised for malformed trace files."""


def _parse_line(line: str, line_number: int) -> List[int]:
    body = line.split("#", 1)[0].strip()
    if not body:
        return []
    parts = [part.strip() for part in body.split(",")]
    if len(parts) != 4:
        raise TraceError(
            f"line {line_number}: expected 4 comma-separated fields, got"
            f" {len(parts)}: {line.rstrip()!r}"
        )
    try:
        return [int(part) for part in parts]
    except ValueError as error:
        raise TraceError(
            f"line {line_number}: non-integer field in {line.rstrip()!r}"
        ) from error


def load_trace(
    source: Union[str, TextIO], network: ClosNetwork
) -> FlowCollection:
    """Read a CSV trace into a :class:`FlowCollection` on ``network``.

    ``source`` is a path or an open text stream.  Endpoint indices are
    validated against the network (1-based, like the paper).

    >>> clos = ClosNetwork(2)
    >>> flows = load_trace(io.StringIO("1,1,3,1\\n1,1,3,1\\n"), clos)
    >>> len(flows), flows[1].tag
    (2, 1)
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_trace(handle, network)

    flows = FlowCollection()
    for line_number, line in enumerate(source, start=1):
        fields = _parse_line(line, line_number)
        if not fields:
            continue
        src_switch, src_server, dst_switch, dst_server = fields
        try:
            src = network.source(src_switch, src_server)
            dst = network.destination(dst_switch, dst_server)
        except ValueError as error:
            raise TraceError(f"line {line_number}: {error}") from error
        flows.add_pair(src, dst)
    return flows


def save_trace(flows: FlowCollection, target: Union[str, TextIO]) -> None:
    """Write ``flows`` as a CSV trace (one row per flow, file order)."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            save_trace(flows, handle)
            return
    target.write("# src_switch,src_server,dst_switch,dst_server\n")
    for flow in flows:
        target.write(
            f"{flow.source.switch},{flow.source.server},"
            f"{flow.dest.switch},{flow.dest.server}\n"
        )
