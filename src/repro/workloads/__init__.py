"""Workload generators: the paper's adversarial constructions and stochastic traffic."""

from repro.workloads.stochastic import churn_workload
from repro.workloads.trace import TraceError, load_trace, save_trace
from repro.workloads.planted import (
    PlantedInstance,
    planted_figure_2,
    planted_theorem_4_3,
)
from repro.workloads.adversarial import (
    AdversarialInstance,
    example_2_3,
    example_2_3_routings,
    example_5_3,
    lemma_4_6_routing,
    theorem_3_4,
    theorem_4_2,
    theorem_4_3,
    theorem_5_4,
)

__all__ = [
    "AdversarialInstance",
    "PlantedInstance",
    "planted_figure_2",
    "planted_theorem_4_3",
    "example_2_3",
    "example_2_3_routings",
    "example_5_3",
    "lemma_4_6_routing",
    "theorem_3_4",
    "theorem_4_2",
    "theorem_4_3",
    "theorem_5_4",
    "TraceError",
    "churn_workload",
    "load_trace",
    "save_trace",
]
