"""The paper's adversarial flow constructions (Figures 1–4).

Each function returns the topology pair and flow collection of one
worked example or theorem proof, typed by flow *type* so tests and
experiments can check the per-type rates the paper derives:

- :func:`example_2_3` — Figure 1: the routing-sensitivity example in
  ``C_2`` (three flow types, two contrasting routings).
- :func:`theorem_3_4` — Figure 2 / Example 3.3: the price-of-fairness
  gadget in ``MS_n`` (2 type-1 flows, ``k`` parallel type-2 flows).
- :func:`theorem_4_2` — Figure 3 / Example 4.1: macro-switch max-min
  rates that **no** Clos routing can replicate.
- :func:`theorem_4_3` — Figure 3 with ``n+1``-fold type-1 flows: the
  ``1/n`` lex-max-min starvation construction, together with the optimal
  routing posited by Lemma 4.6 (Step 1).
- :func:`theorem_5_4` — Figure 4 / Example 5.3: the Doom-Switch
  tightness construction (``(n−1)/2`` stacked price-of-fairness gadgets
  with ``k`` type-2 flows each).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch


class AdversarialInstance(NamedTuple):
    """A paper construction: topologies, flows, and per-type flow groups."""

    clos: ClosNetwork
    macro: MacroSwitch
    flows: FlowCollection
    #: Flow-type label → flows of that type (labels follow the paper).
    types: Dict[str, List[Flow]]


# ----------------------------------------------------------------------
# Figure 1 / Example 2.3
# ----------------------------------------------------------------------
def example_2_3() -> AdversarialInstance:
    """Figure 1's collection of flows in ``C_2`` / ``MS_2``.

    - type 1 (orange): ``(s_1^2, t_1^2)``, ``(s_1^2, t_2^1)``, ``(s_1^2, t_2^2)``;
    - type 2 (blue): ``(s_2^1, t_2^1)`` and ``(s_2^2, t_2^2)``;
    - type 3 (green): ``(s_1^1, t_1^1)``.

    Macro-switch max-min sorted vector: ``[1/3, 1/3, 1/3, 2/3, 2/3, 1]``.
    """
    clos = ClosNetwork(2)
    macro = MacroSwitch(2)
    flows = FlowCollection()

    type1 = [
        flows.add(Flow(clos.source(1, 2), clos.destination(1, 2))),
        flows.add(Flow(clos.source(1, 2), clos.destination(2, 1))),
        flows.add(Flow(clos.source(1, 2), clos.destination(2, 2))),
    ]
    # Paper text: "one flow (s_2^i, t_2^i), i ∈ [2]" — but (s_2^1, t_2^1)
    # and (s_2^2, t_2^2) per the worked derivation.
    type2 = [
        flows.add(Flow(clos.source(2, 1), clos.destination(2, 1))),
        flows.add(Flow(clos.source(2, 2), clos.destination(2, 2))),
    ]
    type3 = [flows.add(Flow(clos.source(1, 1), clos.destination(1, 1)))]

    return AdversarialInstance(
        clos, macro, flows, {"type1": type1, "type2": type2, "type3": type3}
    )


def example_2_3_routings(
    instance: AdversarialInstance,
) -> Tuple[Routing, Routing]:
    """The two routings contrasted in Example 2.3.

    Both keep the type-1 flows ``(s_1^2, t_1^2)`` and ``(s_1^2, t_2^2)``
    on ``M_2``, the type-3 flow on ``M_1``, and the type-2 flows on the
    middle switch of the same index as their output server, so the only
    difference is the middle switch of the type-1 flow ``(s_1^2, t_2^1)``:

    - **routing A**: ``(s_1^2, t_2^1) → M_1`` — type-3 flow shares
      ``I_1 M_1`` and drops to 2/3; everyone else keeps macro rates.
    - **routing B**: ``(s_1^2, t_2^1) → M_2`` — type-3 recovers rate 1
      but the type-2 flow ``(s_2^2, t_2^2)`` drops to 1/3 on ``M_2 O_2``.

    Sorted vectors: A → ``[1/3,1/3,1/3,2/3,2/3,2/3]``,
    B → ``[1/3,1/3,1/3,1/3,2/3,1]``; A is lexicographically greater.
    """
    clos = instance.clos
    t1_a, t1_b, t1_c = instance.types["type1"]  # t_1^2, t_2^1, t_2^2
    t2_a, t2_b = instance.types["type2"]
    (t3,) = instance.types["type3"]

    # Shared assignments: keep type-1 flows (s_1^2,t_1^2) and (s_1^2,t_2^2)
    # on different middle switches (they share the source link), the
    # type-2 flows wherever convenient, and the type-3 flow on M_1.
    base = {t1_a: 2, t1_c: 2, t2_a: 1, t2_b: 2, t3: 1}

    routing_a = Routing.from_middles(
        clos, instance.flows, {**base, t1_b: 1}
    )
    routing_b = Routing.from_middles(
        clos, instance.flows, {**base, t1_b: 2}
    )
    return routing_a, routing_b


# ----------------------------------------------------------------------
# Figure 2 / Example 3.3 / Theorem 3.4
# ----------------------------------------------------------------------
def theorem_3_4(n: int = 1, k: int = 1) -> AdversarialInstance:
    """The price-of-fairness gadget (Figure 2) in ``MS_n`` with ``k`` blue flows.

    - type 1: ``(s_1^1, t_1^1)`` and ``(s_2^1, t_2^1)``;
    - type 2: ``k`` parallel flows ``(s_2^1, t_1^1)``.

    Max throughput: 2 (both type-1 flows at rate 1, type-2 rejected).
    Max-min fair: every flow at ``1/(k+1)``; throughput ``1 + 1/(k+1)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    clos = ClosNetwork(n)
    macro = MacroSwitch(n)
    flows = FlowCollection()

    type1 = [
        flows.add(Flow(macro.source(1, 1), macro.destination(1, 1))),
        flows.add(Flow(macro.source(2, 1), macro.destination(2, 1))),
    ]
    type2 = flows.add_pair(macro.source(2, 1), macro.destination(1, 1), count=k)

    return AdversarialInstance(
        clos, macro, flows, {"type1": type1, "type2": list(type2)}
    )


# ----------------------------------------------------------------------
# Figure 3 / Example 4.1 / Theorems 4.2 and 4.3
# ----------------------------------------------------------------------
def _figure_3_flows(n: int, type1_multiplicity: int) -> AdversarialInstance:
    """Figure 3's flow pattern with ``type1_multiplicity`` copies per pair."""
    if n < 3:
        raise ValueError(f"the Figure 3 construction needs n >= 3, got {n}")
    clos = ClosNetwork(n)
    macro = MacroSwitch(n)
    flows = FlowCollection()

    type1: List[Flow] = []
    for i in range(1, n + 1):
        for j in range(2, n + 1):
            type1.extend(
                flows.add_pair(
                    clos.source(i, j),
                    clos.destination(i, j),
                    count=type1_multiplicity,
                )
            )

    type2a = [
        flows.add(Flow(clos.source(i, 1), clos.destination(i, 1)))
        for i in range(1, n + 1)
    ]
    type2b = [
        flows.add(Flow(clos.source(i, 1), clos.destination(n + 1, j)))
        for i in range(1, n + 1)
        for j in range(1, n)
    ]
    type3 = [flows.add(Flow(clos.source(n + 1, n), clos.destination(n + 1, n)))]

    return AdversarialInstance(
        clos,
        macro,
        flows,
        {
            "type1": type1,
            "type2a": type2a,
            "type2b": type2b,
            "type2": type2a + type2b,
            "type3": type3,
        },
    )


def theorem_4_2(n: int) -> AdversarialInstance:
    """Figure 3 / Example 4.1: one type-1 flow per pair (Theorem 4.2).

    Macro-switch max-min rates: type 1 and type 3 at 1, type 2 at
    ``1/n``.  No Clos routing can carry these rates feasibly.
    """
    return _figure_3_flows(n, type1_multiplicity=1)


def theorem_4_3(n: int) -> AdversarialInstance:
    """Figure 3 with ``n+1`` type-1 flows per pair (Theorem 4.3).

    Macro-switch max-min rates: type 1 → ``1/(n+1)``, type 2 → ``1/n``,
    type 3 → 1 (Lemma 4.4).  Lex-max-min in ``C_n``: identical except
    the type-3 flow starves to ``1/n`` (Lemma 4.6) — a ``1/n`` factor.
    """
    return _figure_3_flows(n, type1_multiplicity=n + 1)


def lemma_4_6_routing(instance: AdversarialInstance) -> Routing:
    """The lex-max-min optimal routing posited by Lemma 4.6, Step 1.

    - all ``n+1`` type-1 flows ``(s_i^j, t_i^j)`` → ``M_{k+1}`` with
      ``k = i + j − 2 (mod n)``;
    - type-2.a flow ``(s_i^1, t_i^1)`` → ``M_i``;
    - type-2.b flow ``(s_i^1, t_{n+1}^j)`` → ``M_i``;
    - the type-3 flow → ``M_n``.

    Also valid for :func:`theorem_4_2` instances (multiplicity 1), where
    it realizes the max-min fair allocation used in Example 4.1's figure.
    """
    n = instance.clos.n
    middles: Dict[Flow, int] = {}
    for flow in instance.types["type1"]:
        i, j = flow.source.switch, flow.source.server
        middles[flow] = ((i + j - 2) % n) + 1
    for flow in instance.types["type2a"] + instance.types["type2b"]:
        middles[flow] = flow.source.switch
    (type3,) = instance.types["type3"]
    middles[type3] = n
    return Routing.from_middles(instance.clos, instance.flows, middles)


# ----------------------------------------------------------------------
# Figure 4 / Example 5.3 / Theorem 5.4
# ----------------------------------------------------------------------
def theorem_5_4(n: int, k: int = 1) -> AdversarialInstance:
    """Figure 4: ``(n−1)/2`` stacked price-of-fairness gadgets in ``C_n``.

    Requires odd ``n ≥ 3``.  All flows leave input switch ``I_1`` and
    enter output switch ``O_1``:

    - type 1: one flow ``(s_1^j, t_1^j)``, ``j ∈ [n−1]``;
    - type 2: ``k`` flows ``(s_1^j, t_1^{j−1})`` for even ``j``.

    Macro-switch max-min: every flow at ``1/(k+1)``; throughput
    ``(n−1)/2 · (1 + 1/(k+1))``.  Doom-Switch's max-min allocation:
    type 1 at ``1 − 2/(n−1)``, type 2 at ``2/(k(n−1))``; throughput
    ``n − 2``.
    """
    if n < 3 or n % 2 == 0:
        raise ValueError(f"the Figure 4 construction needs odd n >= 3, got {n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    clos = ClosNetwork(n)
    macro = MacroSwitch(n)
    flows = FlowCollection()

    type1 = [
        flows.add(Flow(clos.source(1, j), clos.destination(1, j)))
        for j in range(1, n)
    ]
    type2: List[Flow] = []
    for j in range(2, n, 2):
        type2.extend(
            flows.add_pair(clos.source(1, j), clos.destination(1, j - 1), count=k)
        )

    return AdversarialInstance(
        clos, macro, flows, {"type1": type1, "type2": type2}
    )


def example_5_3() -> AdversarialInstance:
    """Example 5.3 verbatim: ``n = 7``, one type-2 flow per gadget."""
    return theorem_5_4(7, k=1)
