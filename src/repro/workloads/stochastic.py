"""Stochastic traffic generators for the simulation study (§6).

The paper's extended version evaluates data-center routing algorithms on
*stochastic inputs*; these generators produce the standard traffic
families that literature uses for Clos evaluation:

- :func:`uniform_random` — each flow picks a source and destination
  uniformly at random (with replacement).
- :func:`permutation` — a random one-to-one mapping of sources to
  destinations (the classic admission-control-friendly pattern: ``T^MT``
  equals the number of flows).
- :func:`hotspot` — a Zipf-skewed destination distribution: a few
  destinations receive most flows (models popular services).
- :func:`incast` — ``fan_in`` sources all send to one destination
  (models partition–aggregate applications).
- :func:`elephant_mice` — a small clique of persistent pairwise-distinct
  "elephant" pairs plus many random "mice" flows; used to show routers
  trading off the two classes.

All generators are deterministic given ``seed`` and return flows on the
given Clos network (valid for its macro-switch too, since both share
server names).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.flows import FlowCollection
from repro.core.nodes import Destination, Source
from repro.core.topology import ClosNetwork


def _servers(network: ClosNetwork) -> Tuple[List[Source], List[Destination]]:
    return list(network.sources), list(network.destinations)


def uniform_random(
    network: ClosNetwork, num_flows: int, seed: int = 0
) -> FlowCollection:
    """``num_flows`` flows with uniformly random endpoints."""
    rng = random.Random(seed)
    sources, destinations = _servers(network)
    flows = FlowCollection()
    for _ in range(num_flows):
        flows.add_pair(rng.choice(sources), rng.choice(destinations))
    return flows


def permutation(network: ClosNetwork, seed: int = 0) -> FlowCollection:
    """A random permutation: every source sends to a distinct destination."""
    rng = random.Random(seed)
    sources, destinations = _servers(network)
    shuffled = list(destinations)
    rng.shuffle(shuffled)
    return FlowCollection.from_pairs(zip(sources, shuffled))


def hotspot(
    network: ClosNetwork,
    num_flows: int,
    skew: float = 1.2,
    seed: int = 0,
) -> FlowCollection:
    """Zipf-skewed destinations: destination ranked ``r`` has weight ``r^-skew``."""
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    rng = random.Random(seed)
    sources, destinations = _servers(network)
    ranked = list(destinations)
    rng.shuffle(ranked)
    weights = [1.0 / (rank**skew) for rank in range(1, len(ranked) + 1)]
    flows = FlowCollection()
    for _ in range(num_flows):
        flows.add_pair(rng.choice(sources), rng.choices(ranked, weights)[0])
    return flows


def incast(
    network: ClosNetwork,
    fan_in: int,
    dest: Optional[Destination] = None,
    seed: int = 0,
) -> FlowCollection:
    """``fan_in`` distinct sources all sending to a single destination."""
    rng = random.Random(seed)
    sources, destinations = _servers(network)
    if fan_in > len(sources):
        raise ValueError(
            f"fan_in {fan_in} exceeds the {len(sources)} available sources"
        )
    if dest is None:
        dest = rng.choice(destinations)
    chosen = rng.sample(sources, fan_in)
    return FlowCollection.from_pairs((s, dest) for s in chosen)


def rack_local(
    network: ClosNetwork,
    num_flows: int,
    locality: float = 0.5,
    seed: int = 0,
) -> FlowCollection:
    """A rack-locality mix: with probability ``locality`` a flow stays
    within its source's "rack pair" (destination ToR index equals the
    source ToR index), otherwise it crosses to a uniformly random other
    ToR.  Production traces show strong locality (the paper's refs
    [29, 30]); sweeping ``locality`` moves load between server links and
    the network interior.
    """
    if not 0 <= locality <= 1:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    rng = random.Random(seed)
    flows = FlowCollection()
    num_tors = 2 * network.n
    for _ in range(num_flows):
        source = rng.choice(network.sources)
        if rng.random() < locality:
            dest_switch = source.switch
        else:
            dest_switch = rng.choice(
                [i for i in range(1, num_tors + 1) if i != source.switch]
            )
        dest = network.destination(dest_switch, rng.randint(1, network.n))
        flows.add_pair(source, dest)
    return flows


def elephant_mice(
    network: ClosNetwork,
    num_elephants: int,
    num_mice: int,
    seed: int = 0,
) -> Tuple[FlowCollection, List, List]:
    """Elephants on distinct source/destination pairs plus random mice.

    Returns ``(flows, elephant_flows, mouse_flows)``; elephants are
    inserted first so routers that process flows in insertion order see
    them first.
    """
    rng = random.Random(seed)
    sources, destinations = _servers(network)
    if num_elephants > min(len(sources), len(destinations)):
        raise ValueError("more elephants than distinct endpoint pairs")
    elephant_sources = rng.sample(sources, num_elephants)
    elephant_dests = rng.sample(destinations, num_elephants)
    flows = FlowCollection()
    elephants = []
    for s, d in zip(elephant_sources, elephant_dests):
        elephants.extend(flows.add_pair(s, d))
    mice = []
    for _ in range(num_mice):
        mice.extend(flows.add_pair(rng.choice(sources), rng.choice(destinations)))
    return flows, elephants, mice


def churn_workload(
    network: ClosNetwork,
    rate: float,
    horizon: float,
    mean_size: float = 1.0,
    size_distribution: str = "exponential",
    pods: int = 1,
    seed: int = 0,
):
    """An open-loop Poisson churn sequence of finite flow jobs.

    Like :func:`repro.sim.jobs.poisson_workload`, but endpoints are
    drawn *pod-locally*: the ToR switches are split into ``pods``
    contiguous groups and each job's destination is sampled from its
    source's group.  With ``pods=1`` this is plain uniform sampling;
    with more pods the flow×link incidence is block-diagonal and
    :func:`repro.sim.stream.simulate_sharded` can simulate each pod
    independently.  Returns a list of
    :class:`~repro.sim.jobs.FlowJob`\\ s sorted by arrival.
    """
    from repro.sim.jobs import FlowJob, _draw_size

    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if mean_size <= 0:
        raise ValueError(f"mean size must be positive, got {mean_size}")
    num_switches = 2 * network.n
    if not 1 <= pods <= min(num_switches, network.num_middles):
        raise ValueError(
            f"pods must be in 1..{min(num_switches, network.num_middles)}, "
            f"got {pods}"
        )
    rng = random.Random(seed)
    sources, destinations = _servers(network)
    # Destination buckets per pod, matching simulate_sharded's partition
    # of ToR switches: switch i -> pod (i-1)*pods // num_switches.
    dest_pods: List[List[Destination]] = [[] for _ in range(pods)]
    for dest in destinations:
        dest_pods[(dest.switch - 1) * pods // num_switches].append(dest)
    jobs = []
    time = 0.0
    job_id = 0
    while True:
        time += rng.expovariate(rate)
        if time > horizon:
            break
        source = rng.choice(sources)
        pod = (source.switch - 1) * pods // num_switches
        jobs.append(
            FlowJob(
                job_id=job_id,
                source=source,
                dest=rng.choice(dest_pods[pod]),
                arrival=time,
                size=_draw_size(rng, mean_size, size_distribution),
            )
        )
        job_id += 1
    return jobs
