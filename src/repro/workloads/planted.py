"""Planted adversarial gadgets inside realistic background traffic.

The paper's impossibility constructions are surgically clean; a natural
systems question is whether their pathologies survive contact with
ordinary traffic.  These generators embed a paper gadget into a larger
network alongside seeded random background flows, keeping the gadget's
flows identified so experiments can track exactly the rates the
theorems talk about:

- :func:`planted_theorem_4_3` — the Figure 3 construction occupies ToR
  switches `1..n+1`; background flows run between the remaining servers
  (never touching the gadget's endpoints), so any interference happens
  purely on *interior* links — the channel the macro-switch abstraction
  claims not to exist.
- :func:`planted_figure_2` — the price-of-fairness gadget on four
  servers plus background, for R1-under-noise measurements.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Tuple

from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import Destination, Source
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.workloads.adversarial import AdversarialInstance, theorem_3_4, theorem_4_3


class PlantedInstance(NamedTuple):
    """A gadget embedded in background traffic."""

    clos: ClosNetwork
    macro: MacroSwitch
    flows: FlowCollection  # gadget flows first, background after
    gadget: AdversarialInstance  # the embedded construction (same flow objects)
    background: List[Flow]


def _background_servers(
    network: ClosNetwork, reserved_switches: set
) -> Tuple[List[Source], List[Destination]]:
    sources = [s for s in network.sources if s.switch not in reserved_switches]
    destinations = [
        t for t in network.destinations if t.switch not in reserved_switches
    ]
    return sources, destinations


def planted_theorem_4_3(
    n: int = 3, num_background: int = 20, seed: int = 0
) -> PlantedInstance:
    """The Theorem 4.3 gadget plus background flows on untouched ToRs.

    The gadget uses input/output switches ``1..n+1``; the Clos network
    ``C_n`` has ``2n`` ToRs per side, leaving switches ``n+2..2n`` for
    background traffic (requires ``n ≥ 3`` so at least one ToR is free).
    """
    gadget = theorem_4_3(n)
    reserved = set(range(1, n + 2))
    sources, destinations = _background_servers(gadget.clos, reserved)
    if not sources or not destinations:
        raise ValueError(f"no free ToR switches for background traffic at n={n}")

    flows = FlowCollection(gadget.flows)
    rng = random.Random(seed)
    background: List[Flow] = []
    for _ in range(num_background):
        background.extend(
            flows.add_pair(rng.choice(sources), rng.choice(destinations))
        )
    return PlantedInstance(
        clos=gadget.clos,
        macro=gadget.macro,
        flows=flows,
        gadget=gadget,
        background=background,
    )


def planted_figure_2(
    n: int = 3, k: int = 4, num_background: int = 20, seed: int = 0
) -> PlantedInstance:
    """The Figure 2 gadget (2 type-1 + k type-2 flows) plus background."""
    gadget = theorem_3_4(n, k)
    reserved = {1, 2}  # the gadget's ToR switches
    sources, destinations = _background_servers(gadget.clos, reserved)
    if not sources or not destinations:
        raise ValueError(f"no free ToR switches for background traffic at n={n}")

    flows = FlowCollection(gadget.flows)
    rng = random.Random(seed)
    background: List[Flow] = []
    for _ in range(num_background):
        background.extend(
            flows.add_pair(rng.choice(sources), rng.choice(destinations))
        )
    return PlantedInstance(
        clos=gadget.clos,
        macro=gadget.macro,
        flows=flows,
        gadget=gadget,
        background=background,
    )
