"""Metrics and reporting for the experiment harness."""

from repro.analysis.distributions import (
    empirical_cdf,
    fraction_at_most,
    percentile,
    percentile_table,
    text_histogram,
)
from repro.analysis.metrics import (
    RateComparison,
    compare_to_macro,
    jain_fairness_index,
    price_of_fairness,
    relative_max_min_floor,
    summarize_rates,
    throughput_gain,
)
from repro.analysis.reporting import format_cell, format_series, format_table

__all__ = [
    "RateComparison",
    "compare_to_macro",
    "empirical_cdf",
    "fraction_at_most",
    "format_cell",
    "format_series",
    "format_table",
    "jain_fairness_index",
    "percentile",
    "percentile_table",
    "price_of_fairness",
    "relative_max_min_floor",
    "summarize_rates",
    "text_histogram",
    "throughput_gain",
]
