"""Rate-distribution summaries: CDFs, percentiles, text histograms.

The paper compares allocations by sorted vectors (exact, lexicographic);
evaluation sections of systems papers usually present the same data as
CDFs and percentile tables.  These helpers bridge the two views for the
simulation experiments' reporting.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.core.allocation import Allocation


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF as ``(value, fraction ≤ value)`` breakpoints.

    >>> empirical_cdf([1.0, 1.0, 2.0])
    [(1.0, 0.6666666666666666), (2.0, 1.0)]
    """
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if index == total or ordered[index] != value:
            points.append((value, index / total))
    return points


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank, ``0 < q ≤ 100``).

    >>> percentile([1, 2, 3, 4], 50)
    2
    """
    if not values:
        raise ValueError("no values")
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def percentile_table(
    allocation: Allocation, qs: Sequence[float] = (1, 10, 25, 50, 75, 90, 99)
) -> Dict[float, float]:
    """Rate percentiles of an allocation (floats)."""
    values = [float(r) for r in allocation.rates().values()]
    return {q: float(percentile(values, q)) for q in qs}


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """``P[X ≤ threshold]`` under the empirical distribution."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    return bisect.bisect_right(ordered, threshold) / len(ordered)


def text_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
) -> str:
    """A fixed-width ASCII histogram (one line per bin).

    >>> print(text_histogram([0.1, 0.1, 0.9], bins=2, width=4))
    [0.100, 0.500)  ####  2
    [0.500, 0.900]  ##    1
    """
    if not values:
        raise ValueError("no values")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    low, high = min(values), max(values)
    if low == high:
        return f"[{low:.3f}]  {'#' * width}  {len(values)}"
    span = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        left = low + index * span
        right = left + span
        bracket = "]" if index == bins - 1 else ")"
        bar = "#" * max(0, round(width * count / peak)) if count else ""
        lines.append(
            f"[{left:.3f}, {right:.3f}{bracket}  {bar.ljust(width)}  {count}"
        )
    return "\n".join(lines)
