"""Performance metrics connecting the paper's three results.

- **Price of fairness** (R1, footnote 2): ``1 − T^MmF / T^MT`` — the
  throughput fraction forfeited by max-min fairness.
- **Rate ratios / starvation** (R2): per-flow ``network rate /
  macro-switch rate``; the minimum ratio is the worst starvation and the
  paper's relative-max-min-fairness discussion (§7) asks whether it can
  be bounded below by a constant.
- **Throughput gain** (R3): ``T(clos allocation) / T^MmF`` — how much
  routing "perverts" fairness into throughput.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, NamedTuple

from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow


def price_of_fairness(t_max_min: Rate, t_max_throughput: Rate) -> Rate:
    """``1 − T^MmF / T^MT`` (0 when fairness costs nothing; ≤ 1/2 by Thm 3.4)."""
    if t_max_throughput == 0:
        return Fraction(0) if isinstance(t_max_min, Fraction) else 0.0
    return 1 - t_max_min / t_max_throughput


def throughput_gain(t_network: Rate, t_macro_max_min: Rate) -> Rate:
    """``T(network) / T^MmF`` (≤ 2 by Theorem 5.4)."""
    if t_macro_max_min == 0:
        raise ValueError("macro-switch max-min throughput is zero")
    return t_network / t_macro_max_min


class RateComparison(NamedTuple):
    """Per-flow comparison of a network allocation against the macro-switch."""

    ratios: Dict[Flow, Rate]  # network rate / macro rate, per flow
    min_ratio: Rate  # the worst-off flow's ratio (starvation factor)
    max_ratio: Rate  # the best-off flow's ratio
    num_degraded: int  # flows strictly below their macro rate
    num_starved: int  # flows at ratio 0


def compare_to_macro(
    network_alloc: Allocation, macro_alloc: Allocation
) -> RateComparison:
    """Per-flow rate ratios of a Clos allocation vs. the macro-switch one.

    Flows whose macro rate is zero are skipped in the ratio map (the
    macro-switch max-min allocation never assigns zero to a flow with a
    path, so this only triggers for degenerate inputs).
    """
    ratios: Dict[Flow, Rate] = {}
    for flow in macro_alloc.flows():
        macro_rate = macro_alloc.rate(flow)
        if macro_rate == 0:
            continue
        ratios[flow] = network_alloc.rate(flow) / macro_rate
    if not ratios:
        raise ValueError("no comparable flows")
    values = list(ratios.values())
    return RateComparison(
        ratios=ratios,
        min_ratio=min(values),
        max_ratio=max(values),
        num_degraded=sum(1 for v in values if v < 1),
        num_starved=sum(1 for v in values if v == 0),
    )


def relative_max_min_floor(comparison: RateComparison) -> Rate:
    """The relative-max-min-fairness value of an allocation (§7, R2).

    An allocation is *relative-max-min fair with floor α* when every
    flow keeps at least an ``α`` fraction of its macro-switch rate; the
    achieved floor is simply the minimum ratio.
    """
    return comparison.min_ratio


def jain_fairness_index(allocation: Allocation) -> float:
    """Jain's index ``(Σx)² / (n·Σx²)`` — 1.0 means perfectly equal rates.

    A standard summary the simulation harness reports alongside the
    paper's lexicographic comparisons (which are exact but not scalar).
    """
    values = [float(r) for r in allocation.rates().values()]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def summarize_rates(allocation: Allocation) -> Dict[str, float]:
    """Scalar summary of an allocation: throughput, min/median/max rate, Jain."""
    vector = [float(r) for r in allocation.sorted_vector()]
    if not vector:
        return {
            "throughput": 0.0,
            "min_rate": 0.0,
            "median_rate": 0.0,
            "max_rate": 0.0,
            "jain": 1.0,
        }
    return {
        "throughput": float(allocation.throughput()),
        "min_rate": vector[0],
        "median_rate": vector[len(vector) // 2],
        "max_rate": vector[-1],
        "jain": jain_fairness_index(allocation),
    }
