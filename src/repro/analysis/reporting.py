"""Plain-text tables and series for the experiment harness.

The benchmark suite regenerates the paper's figures as *series* (x
values against one column per curve) and prints them with these helpers,
so ``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
in a terminal and ``EXPERIMENTS.md`` can quote the output verbatim.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float, Fraction]


def format_cell(value: Cell) -> str:
    """Human-friendly rendering: Fractions as 'p/q (float)', floats rounded."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value.numerator}/{value.denominator} ({float(value):.4f})"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_series(
    x_name: str,
    x_values: Sequence[Cell],
    columns: Dict[str, Sequence[Cell]],
    title: str = "",
) -> str:
    """Render a figure-style series: one x column plus one column per curve."""
    headers = [x_name] + list(columns)
    rows = []
    for index, x in enumerate(x_values):
        rows.append([x] + [columns[name][index] for name in columns])
    return format_table(headers, rows, title=title)
